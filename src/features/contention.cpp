#include "features/contention.hpp"

#include <algorithm>
#include <set>
#include <thread>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xfl::features {

namespace {

/// Sweep-level observability: one span and a handful of adds per call,
/// nothing inside the per-record interval sweep itself.
struct SweepMetrics {
  obs::Counter& sweeps = obs::counter("contention.sweeps");
  obs::Counter& records = obs::counter("contention.records");
  obs::Histogram& sweep_us = obs::histogram("contention.sweep_us");
};

SweepMetrics& sweep_metrics() {
  static SweepMetrics metrics;
  return metrics;
}

/// Overlap time O(i, k) of two records (Eq. 2's helper).
double overlap_s(const logs::TransferRecord& a, const logs::TransferRecord& b) {
  return std::max(0.0, std::min(a.end_s, b.end_s) -
                           std::max(a.start_s, b.start_s));
}

/// Accumulate the contribution of competitor `other` to `self`'s features
/// at endpoint `at`, weighted by the overlap fraction of self's duration.
void accumulate(const logs::TransferRecord& self,
                const logs::TransferRecord& other, endpoint::EndpointId at,
                ContentionFeatures& features) {
  const double weight = overlap_s(self, other) / self.duration_s();
  if (weight <= 0.0) return;
  const double rate = other.rate_Bps();
  const double instances = other.effective_processes();
  const double streams = other.effective_streams();

  const bool self_src_here = self.src == at;
  const bool self_dst_here = self.dst == at;
  const bool other_out_here = other.src == at;
  const bool other_in_here = other.dst == at;

  if (self_src_here) {
    // G aggregates competitors in *either* direction at the endpoint
    // (the paper: "all transfers except k that have src_k as their source
    // or destination"); K and S are split by flow direction.
    features.g_src += weight * instances;
    if (other_out_here) {
      features.k_sout += weight * rate;
      features.s_sout += weight * streams;
    }
    if (other_in_here) {
      features.k_sin += weight * rate;
      features.s_sin += weight * streams;
    }
  }
  if (self_dst_here) {
    features.g_dst += weight * instances;
    if (other_out_here) {
      features.k_dout += weight * rate;
      features.s_dout += weight * streams;
    }
    if (other_in_here) {
      features.k_din += weight * rate;
      features.s_din += weight * streams;
    }
  }
}

/// Field-wise accumulation, used when merging per-endpoint buffers.
void add_features(ContentionFeatures& into, const ContentionFeatures& from) {
  into.k_sout += from.k_sout;
  into.k_sin += from.k_sin;
  into.k_dout += from.k_dout;
  into.k_din += from.k_din;
  into.g_src += from.g_src;
  into.g_dst += from.g_dst;
  into.s_sout += from.s_sout;
  into.s_sin += from.s_sin;
  into.s_dout += from.s_dout;
  into.s_din += from.s_din;
}

/// One endpoint's interval-overlap sweep, written into `local` (parallel to
/// `indices`). Each overlapping pair is visited exactly once (when the
/// later-starting member arrives) and contributes in both directions.
void sweep_endpoint(const std::vector<logs::TransferRecord>& records,
                    endpoint::EndpointId endpoint_id,
                    const std::vector<std::size_t>& indices,
                    std::vector<ContentionFeatures>& local) {
  // Active set ordered by end time; the global record index is the
  // tie-break so the accumulation order is a pure function of the log.
  struct ActiveEntry {
    double end_s;
    std::size_t index;  ///< Into records.
    std::size_t pos;    ///< Into indices/local.
    bool operator<(const ActiveEntry& other) const {
      if (end_s != other.end_s) return end_s < other.end_s;
      return index < other.index;
    }
  };
  std::set<ActiveEntry> active;
  for (std::size_t pos = 0; pos < indices.size(); ++pos) {
    const std::size_t k = indices[pos];
    const auto& self = records[k];
    // Retire competitors that ended at or before self's start
    // (zero overlap contributes nothing).
    while (!active.empty() && active.begin()->end_s <= self.start_s)
      active.erase(active.begin());
    for (const auto& entry : active) {
      const auto& other = records[entry.index];
      accumulate(self, other, endpoint_id, local[pos]);
      accumulate(other, self, endpoint_id, local[entry.pos]);
    }
    active.insert({self.end_s, k, pos});
  }
}

}  // namespace

std::vector<ContentionFeatures> compute_contention(const logs::LogStore& log,
                                                   int threads) {
  XFL_EXPECTS(threads >= 0);
  XFL_SPAN("features.contention.sweep");
  auto& metrics = sweep_metrics();
  const std::uint64_t start_us = obs::monotonic_us();
  std::vector<ContentionFeatures> features(log.size());
  const auto& records = log.records();

  // Distinct endpoints present in the log, ascending (fixes the merge order).
  std::set<endpoint::EndpointId> endpoint_set;
  for (const auto& record : records) {
    endpoint_set.insert(record.src);
    endpoint_set.insert(record.dst);
  }
  const std::vector<endpoint::EndpointId> endpoints(endpoint_set.begin(),
                                                    endpoint_set.end());

  // Phase 1: independent per-endpoint sweeps into per-endpoint buffers.
  // A record appears under both its src and dst endpoint, so sweeping
  // straight into `features` would race across endpoints.
  std::vector<std::vector<std::size_t>> indices(endpoints.size());
  std::vector<std::vector<ContentionFeatures>> locals(endpoints.size());
  auto sweep_job = [&](std::size_t e) {
    indices[e] = log.endpoint_transfers(endpoints[e]);
    locals[e].assign(indices[e].size(), ContentionFeatures{});
    sweep_endpoint(records, endpoints[e], indices[e], locals[e]);
  };
  std::size_t workers = threads > 0 ? static_cast<std::size_t>(threads)
                                    : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers > 1 && endpoints.size() > 1) {
    ThreadPool pool(std::min(workers, endpoints.size()));
    pool.parallel_for(endpoints.size(), sweep_job);
  } else {
    for (std::size_t e = 0; e < endpoints.size(); ++e) sweep_job(e);
  }

  // Phase 2: merge in ascending endpoint order. Each record receives its
  // src-side and dst-side sums in a fixed order, so the result does not
  // depend on the thread count.
  for (std::size_t e = 0; e < endpoints.size(); ++e)
    for (std::size_t pos = 0; pos < indices[e].size(); ++pos)
      add_features(features[indices[e][pos]], locals[e][pos]);

  const std::uint64_t elapsed_us = obs::monotonic_us() - start_us;
  metrics.sweeps.add(1);
  metrics.records.add(records.size());
  metrics.sweep_us.record(static_cast<double>(elapsed_us));
  XFL_LOG(debug) << "contention sweep complete"
                 << obs::kv("records", records.size())
                 << obs::kv("endpoints", endpoints.size())
                 << obs::kv("elapsed_us", elapsed_us);
  return features;
}

double relative_external_load(const logs::TransferRecord& record,
                              const ContentionFeatures& features) {
  const double rate = record.rate_Bps();
  XFL_EXPECTS(rate >= 0.0);
  const double source_side =
      features.k_sout > 0.0 ? features.k_sout / (rate + features.k_sout) : 0.0;
  const double destination_side =
      features.k_din > 0.0 ? features.k_din / (rate + features.k_din) : 0.0;
  return std::max(source_side, destination_side);
}

}  // namespace xfl::features
