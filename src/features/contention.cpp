#include "features/contention.hpp"

#include <algorithm>
#include <set>

#include "common/contracts.hpp"

namespace xfl::features {

namespace {

/// Overlap time O(i, k) of two records (Eq. 2's helper).
double overlap_s(const logs::TransferRecord& a, const logs::TransferRecord& b) {
  return std::max(0.0, std::min(a.end_s, b.end_s) -
                           std::max(a.start_s, b.start_s));
}

/// Accumulate the contribution of competitor `other` to `self`'s features
/// at endpoint `at`, weighted by the overlap fraction of self's duration.
void accumulate(const logs::TransferRecord& self,
                const logs::TransferRecord& other, endpoint::EndpointId at,
                ContentionFeatures& features) {
  const double weight = overlap_s(self, other) / self.duration_s();
  if (weight <= 0.0) return;
  const double rate = other.rate_Bps();
  const double instances = other.effective_processes();
  const double streams = other.effective_streams();

  const bool self_src_here = self.src == at;
  const bool self_dst_here = self.dst == at;
  const bool other_out_here = other.src == at;
  const bool other_in_here = other.dst == at;

  if (self_src_here) {
    // G aggregates competitors in *either* direction at the endpoint
    // (the paper: "all transfers except k that have src_k as their source
    // or destination"); K and S are split by flow direction.
    features.g_src += weight * instances;
    if (other_out_here) {
      features.k_sout += weight * rate;
      features.s_sout += weight * streams;
    }
    if (other_in_here) {
      features.k_sin += weight * rate;
      features.s_sin += weight * streams;
    }
  }
  if (self_dst_here) {
    features.g_dst += weight * instances;
    if (other_out_here) {
      features.k_dout += weight * rate;
      features.s_dout += weight * streams;
    }
    if (other_in_here) {
      features.k_din += weight * rate;
      features.s_din += weight * streams;
    }
  }
}

}  // namespace

std::vector<ContentionFeatures> compute_contention(const logs::LogStore& log) {
  std::vector<ContentionFeatures> features(log.size());
  const auto& records = log.records();

  // Distinct endpoints present in the log.
  std::set<endpoint::EndpointId> endpoints;
  for (const auto& record : records) {
    endpoints.insert(record.src);
    endpoints.insert(record.dst);
  }

  for (const auto endpoint_id : endpoints) {
    const auto indices = log.endpoint_transfers(endpoint_id);
    // Sweep in start order with an active set ordered by end time.
    // Each overlapping pair is visited exactly once (when the later-starting
    // member arrives) and contributes in both directions.
    struct ActiveEntry {
      double end_s;
      std::size_t index;
      bool operator<(const ActiveEntry& other) const {
        if (end_s != other.end_s) return end_s < other.end_s;
        return index < other.index;
      }
    };
    std::set<ActiveEntry> active;
    for (const std::size_t k : indices) {
      const auto& self = records[k];
      // Retire competitors that ended at or before self's start
      // (zero overlap contributes nothing).
      while (!active.empty() && active.begin()->end_s <= self.start_s)
        active.erase(active.begin());
      for (const auto& entry : active) {
        const auto& other = records[entry.index];
        accumulate(self, other, endpoint_id, features[k]);
        accumulate(other, self, endpoint_id, features[entry.index]);
      }
      active.insert({self.end_s, k});
    }
  }
  return features;
}

double relative_external_load(const logs::TransferRecord& record,
                              const ContentionFeatures& features) {
  const double rate = record.rate_Bps();
  XFL_EXPECTS(rate >= 0.0);
  const double source_side =
      features.k_sout > 0.0 ? features.k_sout / (rate + features.k_sout) : 0.0;
  const double destination_side =
      features.k_din > 0.0 ? features.k_din / (rate + features.k_din) : 0.0;
  return std::max(source_side, destination_side);
}

}  // namespace xfl::features
