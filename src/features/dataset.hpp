// Dataset assembly: turn a transfer log plus contention features into the
// regression matrices of §5.
//
// Columns follow the Fig. 9 / Fig. 12 order exactly:
//   Ksout Kdin C P Ssout Ssin Sdout Sdin Ksin Kdout Nd Nb Nflt Gsrc Gdst Nf
// Nflt is included only for explanation models (§4: "we use it for
// explanation ... but not prediction"). Rates (the target and the K
// features) are expressed in MB/s.
#pragma once

#include <array>
#include <iosfwd>
#include <cstdint>
#include <string>
#include <vector>

#include "features/contention.hpp"
#include "features/endpoint_stats.hpp"
#include "logs/log_store.hpp"
#include "ml/matrix.hpp"

namespace xfl::features {

/// Canonical feature columns (Fig. 9 order).
enum class FeatureId : std::size_t {
  kKsout = 0,
  kKdin,
  kC,
  kP,
  kSsout,
  kSsin,
  kSdout,
  kSdin,
  kKsin,
  kKdout,
  kNd,
  kNb,
  kNflt,
  kGsrc,
  kGdst,
  kNf,
};

inline constexpr std::array<const char*, 16> kFeatureNames = {
    "Ksout", "Kdin",  "C",  "P",  "Ssout", "Ssin", "Sdout", "Sdin",
    "Ksin",  "Kdout", "Nd", "Nb", "Nflt",  "Gsrc", "Gdst",  "Nf"};

/// Number of model features including Nflt.
inline constexpr std::size_t kFeatureCount = 16;

/// Options controlling dataset construction.
struct DatasetOptions {
  /// Keep Nflt as a column (explanation models only).
  bool include_nflt = false;
  /// Keep only transfers with rate >= load_threshold * Rmax(edge)
  /// (§4.3.2's unknown-load mitigation). 0 disables the filter. For the
  /// global dataset the threshold applies per edge.
  double load_threshold = 0.5;
  /// Optional per-edge round-trip time map. When set, the global dataset
  /// gains an "RTT" column — the extension §5.4 names as future work
  /// ("we will incorporate round-trip times for each edge, which we
  /// expect to reduce errors further"). Ignored by per-edge datasets
  /// (RTT is constant within an edge). Not owned; must outlive the call.
  const std::map<logs::EdgeKey, double>* edge_rtt_s = nullptr;
};

/// A feature matrix with aligned targets and provenance.
struct Dataset {
  std::vector<std::string> feature_names;
  ml::Matrix x;                              ///< Raw (unstandardised) features.
  std::vector<double> y;                     ///< Transfer rate, MB/s.
  std::vector<std::size_t> record_indices;   ///< Rows -> log record index.

  std::size_t rows() const { return y.size(); }
  std::size_t cols() const { return feature_names.size(); }

  /// New dataset keeping only the flagged columns.
  Dataset select_features(const std::vector<bool>& keep) const;
};

/// Build the per-edge dataset of §5.1/§5.2. `contention` must be parallel
/// to log.records(). Requires the edge to have at least one transfer.
Dataset build_edge_dataset(const logs::LogStore& log,
                           const std::vector<ContentionFeatures>& contention,
                           const logs::EdgeKey& edge,
                           const DatasetOptions& options = {});

/// Build the pooled multi-edge dataset of §5.4 with the two endpoint
/// capability columns "ROmax_src" and "RImax_dst" appended (Eq. 5).
Dataset build_global_dataset(
    const logs::LogStore& log,
    const std::vector<ContentionFeatures>& contention,
    const std::vector<logs::EdgeKey>& edges,
    const std::map<endpoint::EndpointId, EndpointCapability>& capabilities,
    const DatasetOptions& options = {});

/// Identify near-constant columns (the paper eliminates C and P per edge
/// "because they do not vary greatly"). A column is eliminated when the
/// most common value accounts for at least `mode_threshold` of the samples
/// (discrete tunables that almost never change), or when its coefficient
/// of variation is below 1% (numerically constant). Returns one flag per
/// column, true = keep.
/// `threads` fans the per-column statistics out over a pool (0 = hardware
/// concurrency, 1 = serial); columns are independent, so the mask is
/// identical for every thread count.
std::vector<bool> variance_mask(const ml::Matrix& x,
                                double mode_threshold = 0.97,
                                int threads = 1);

/// Write a dataset as CSV (header: feature names + "rate_mbps"), the
/// format of the paper's published (anonymised) train/test data. Read
/// back with read_dataset_csv; feature names round-trip.
void write_dataset_csv(const Dataset& dataset, std::ostream& out);

/// Parse a dataset written by write_dataset_csv. record_indices are not
/// persisted (they reference a log the CSV reader does not have) and come
/// back as 0..n-1. Throws std::runtime_error on malformed input.
Dataset read_dataset_csv(std::istream& in);

/// 70/30-style random split (paper: "we randomly select 70% of the log
/// data to train the model and the other 30% to test").
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};
TrainTestSplit split_dataset(const Dataset& dataset, double train_fraction,
                             std::uint64_t seed);

}  // namespace xfl::features
