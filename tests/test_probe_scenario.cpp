#include <gtest/gtest.h>

#include "common/units.hpp"
#include "sim/probe.hpp"
#include "sim/scenario.hpp"

namespace xfl::sim {
namespace {

SimConfig quiet_config() {
  SimConfig config;
  config.enable_faults = false;
  config.seed = 3;
  return config;
}

class EsnetProbe : public ::testing::Test {
 protected:
  EsnetProbe() {
    EsnetConfig config;
    config.transfers = 0;  // Idle testbed for probing.
    scenario_ = make_esnet_testbed(config);
  }
  Scenario scenario_;
};

TEST_F(EsnetProbe, SubsystemOrderingMatchesTable1) {
  // ANL -> BNL: the paper's Table 1 shows DR ~9.3, DW ~7.8, MM ~9.4 Gb/s,
  // with R == min == DW. Check the ordering and rough magnitudes.
  const auto maxima = measure_subsystem_maxima(
      scenario_.sites, scenario_.endpoints, quiet_config(), 0, 1);
  EXPECT_GT(maxima.dr_max, maxima.dw_max);  // Reads faster than writes.
  EXPECT_GT(maxima.mm_max, maxima.dw_max);  // Network above disk write.
  // Eq. 1 holds: R <= min(DR, MM, DW) with some slack for startup costs.
  const double bound =
      std::min({maxima.dr_max, maxima.mm_max, maxima.dw_max});
  EXPECT_LE(maxima.r_max, bound * 1.0001);
  EXPECT_GT(maxima.r_max, 0.9 * bound);
  EXPECT_NEAR(to_gbit(maxima.dw_max), 7.8, 0.8);
  EXPECT_NEAR(to_gbit(maxima.dr_max), 9.3, 0.9);
}

TEST_F(EsnetProbe, IntercontinentalNetworkSlower) {
  // CERN paths lose more and have ~5x the RTT: MMmax(ANL->CERN) must fall
  // below MMmax(ANL->BNL), mirroring Table 1 (9.41 vs 8.99 Gb/s).
  const double mm_domestic = measure_max_rate_Bps(
      scenario_.sites, scenario_.endpoints, quiet_config(), 0, 1,
      ProbeKind::kMemToMem);
  // Endpoint index 2 is CERN (kEsnetSites order: ANL BNL CERN LBL).
  const double mm_cern = measure_max_rate_Bps(
      scenario_.sites, scenario_.endpoints, quiet_config(), 0, 2,
      ProbeKind::kMemToMem);
  EXPECT_LT(mm_cern, mm_domestic);
  EXPECT_GT(mm_cern, 0.5 * mm_domestic);  // Not catastrophically slower.
}

TEST_F(EsnetProbe, RepetitionsTakeMaximum) {
  ProbeConfig one_rep;
  one_rep.repetitions = 1;
  ProbeConfig five_reps;
  five_reps.repetitions = 5;
  const double one = measure_max_rate_Bps(scenario_.sites, scenario_.endpoints,
                                          quiet_config(), 0, 1,
                                          ProbeKind::kDiskToDisk, one_rep);
  const double five = measure_max_rate_Bps(
      scenario_.sites, scenario_.endpoints, quiet_config(), 0, 1,
      ProbeKind::kDiskToDisk, five_reps);
  EXPECT_GE(five, one * 0.999);  // Max over reps can only help.
}

TEST(Scenario, EsnetBuildsFourEndpoints) {
  const auto scenario = make_esnet_testbed({});
  EXPECT_EQ(scenario.endpoints.size(), 4u);
  EXPECT_EQ(scenario.sites.size(), 4u);
  EXPECT_EQ(scenario.heavy_edges.size(), 12u);  // All directed pairs.
  EXPECT_FALSE(scenario.workload.empty());
}

TEST(Scenario, EsnetWorkloadRunsToCompletion) {
  EsnetConfig config;
  config.transfers = 200;
  config.duration_s = 86400.0;
  const auto scenario = make_esnet_testbed(config);
  const auto result = scenario.run();
  EXPECT_EQ(result.log.size(), scenario.workload.size());
}

TEST(Scenario, ProductionHasThirtyHeavyEdgesAndTypes) {
  ProductionConfig config;
  config.duration_s = 0.5 * 86400.0;  // Tiny slice for test speed.
  config.session_arrivals_per_s = 0.002;
  const auto scenario = make_production(config);
  EXPECT_EQ(scenario.heavy_edges.size(), 30u);
  // Both endpoint types must exist (Table 4 mix).
  bool saw_server = false, saw_personal = false;
  for (std::size_t i = 0; i < scenario.endpoints.size(); ++i) {
    const auto& spec =
        scenario.endpoints[static_cast<endpoint::EndpointId>(i)];
    saw_server |= spec.type == endpoint::EndpointType::kServer;
    saw_personal |= spec.type == endpoint::EndpointType::kPersonal;
  }
  EXPECT_TRUE(saw_server);
  EXPECT_TRUE(saw_personal);
  EXPECT_FALSE(scenario.backgrounds.empty());
}

TEST(Scenario, ProductionHeavyEdgesDistinct) {
  ProductionConfig config;
  config.duration_s = 0.1 * 86400.0;
  config.session_arrivals_per_s = 0.001;
  const auto scenario = make_production(config);
  for (std::size_t i = 0; i < scenario.heavy_edges.size(); ++i)
    for (std::size_t j = i + 1; j < scenario.heavy_edges.size(); ++j)
      EXPECT_FALSE(scenario.heavy_edges[i] == scenario.heavy_edges[j]);
}

TEST(Scenario, LmtScenarioShapeMatchesPaper) {
  LmtConfig config;
  config.test_transfers = 40;  // Small for test speed.
  const auto scenario = make_nersc_lmt(config);
  // Two monitored test OSTs plus two sibling OSTs carrying striped load.
  EXPECT_EQ(scenario.endpoints.size(), 4u);
  EXPECT_EQ(scenario.monitored_endpoints.size(), 2u);
  EXPECT_DOUBLE_EQ(scenario.sample_interval_s, 5.0);

  // Test transfers have uniform characteristics (§5.5.2).
  std::size_t tests = 0;
  for (const auto& req : scenario.workload) {
    if (req.id >= kLmtLoadFirstId) continue;
    ++tests;
    EXPECT_DOUBLE_EQ(req.bytes, 2.4e10);
    EXPECT_EQ(req.files, 96u);
    EXPECT_EQ(req.dirs, 1u);
  }
  EXPECT_EQ(tests, 40u);
}

TEST(Scenario, LmtRunProducesSamplesAndLog) {
  LmtConfig config;
  config.test_transfers = 30;
  config.test_interarrival_s = 60.0;
  const auto scenario = make_nersc_lmt(config);
  const auto result = scenario.run();
  EXPECT_GE(result.log.size(), 30u);
  ASSERT_EQ(result.samples.size(), 2u);
  for (const auto& [endpoint, samples] : result.samples) {
    EXPECT_GT(samples.size(), 100u) << "endpoint " << endpoint;
  }
}

}  // namespace
}  // namespace xfl::sim
