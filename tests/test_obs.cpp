// Observability-layer contracts: exact counter totals under concurrent
// writers, histogram bucketing, span nesting, trace-JSON well-formedness,
// and the logger's sink formats. The concurrency cases are the ones that
// matter under -DXFL_SANITIZE=thread (tier2-obs label).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using xfl::obs::Registry;

// ---------------------------------------------------------------------------
// Minimal JSON validator: enough structure checking to guarantee the
// emitted documents parse (balanced containers outside strings, legal
// escapes, no trailing garbage). Not a full parser by design.
bool json_well_formed(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  bool saw_value = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        if (std::string("\"\\/bfnrtu").find(c) == std::string::npos)
          return false;
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // Unescaped control character.
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; saw_value = true; break;
      case '{': case '[': stack.push_back(c); saw_value = true; break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty() && saw_value;
}

TEST(JsonValidator, AcceptsAndRejects) {
  EXPECT_TRUE(json_well_formed(R"({"a":[1,2,{"b":"c\n"}]})"));
  EXPECT_FALSE(json_well_formed(R"({"a":1)"));
  EXPECT_FALSE(json_well_formed(R"({"a":"unterminated})"));
  EXPECT_FALSE(json_well_formed(R"(["bad\q"])"));
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(Metrics, CounterExactUnderConcurrentWriters) {
  auto& counter = xfl::obs::counter("test.obs.concurrent");
  Registry::instance().reset();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Metrics, CounterSameNameSameInstance) {
  auto& a = xfl::obs::counter("test.obs.same");
  auto& b = xfl::obs::counter("test.obs.same");
  EXPECT_EQ(&a, &b);
  Registry::instance().reset();
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
}

TEST(Metrics, GaugeTracksValueAndMax) {
  auto& gauge = xfl::obs::gauge("test.obs.gauge");
  Registry::instance().reset();
  gauge.set(5.0);
  gauge.set(11.0);
  gauge.set(2.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
  EXPECT_DOUBLE_EQ(gauge.max(), 11.0);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  static constexpr double kBounds[] = {1.0, 10.0, 100.0};
  auto& histogram = xfl::obs::histogram("test.obs.hist", kBounds);
  Registry::instance().reset();
  histogram.record(0.5);    // <= 1
  histogram.record(1.0);    // <= 1 (bound inclusive)
  histogram.record(7.0);    // <= 10
  histogram.record(1000.0); // overflow
  const auto snapshot = histogram.snapshot();
  ASSERT_EQ(snapshot.upper_bounds.size(), 3u);
  ASSERT_EQ(snapshot.counts.size(), 4u);
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.counts[1], 1u);
  EXPECT_EQ(snapshot.counts[2], 0u);
  EXPECT_EQ(snapshot.counts[3], 1u);
  EXPECT_EQ(snapshot.count, 4u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 1008.5);
}

TEST(Metrics, HistogramExactUnderConcurrentWriters) {
  static constexpr double kBounds[] = {10.0, 100.0};
  auto& histogram = xfl::obs::histogram("test.obs.hist_mt", kBounds);
  Registry::instance().reset();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&histogram] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        histogram.record(static_cast<double>(i % 200));
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.snapshot().count, kThreads * kPerThread);
}

TEST(Metrics, DisabledSwitchDropsWrites) {
  auto& counter = xfl::obs::counter("test.obs.disabled");
  Registry::instance().reset();
  xfl::obs::set_metrics_enabled(false);
  counter.add(100);
  xfl::obs::set_metrics_enabled(true);
  counter.add(1);
  EXPECT_EQ(counter.value(), 1u);
}

TEST(Metrics, RegistryJsonWellFormed) {
  Registry::instance().reset();
  xfl::obs::counter("test.obs.json_counter").add(42);
  xfl::obs::gauge("test.obs.json_gauge").set(3.5);
  xfl::obs::histogram("test.obs.json_hist").record(55.0);
  const std::string json = Registry::instance().to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"test.obs.json_counter\":42"), std::string::npos);
  EXPECT_NE(json.find("\"+inf\""), std::string::npos);
}

TEST(Metrics, CountersCompactListsNonzero) {
  Registry::instance().reset();
  xfl::obs::counter("test.obs.compact").add(9);
  const std::string compact = Registry::instance().counters_compact();
  EXPECT_NE(compact.find("test.obs.compact=9"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Quantile extraction (the serve-path latency exposition rides on this).

TEST(Metrics, LogBucketBoundsAreGeometricAndCoverTheRange) {
  const auto bounds = xfl::obs::log_bucket_bounds(1.0, 1000.0, 2.0);
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front(), 1.0);
  // Geometric interior; the final bound is clamped to hi exactly so the
  // overflow clamp never reports beyond the instrumented range.
  EXPECT_EQ(bounds.back(), 1000.0);
  for (std::size_t i = 1; i + 1 < bounds.size(); ++i)
    EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 2.0);
  // Degenerate arguments yield no bounds rather than an infinite loop.
  EXPECT_TRUE(xfl::obs::log_bucket_bounds(0.0, 1000.0, 2.0).empty());
  EXPECT_TRUE(xfl::obs::log_bucket_bounds(1.0, 1000.0, 1.0).empty());
  EXPECT_TRUE(xfl::obs::log_bucket_bounds(1000.0, 1.0, 2.0).empty());
}

TEST(Metrics, QuantileInterpolatesWithinBucketResolution) {
  xfl::obs::Histogram hist(xfl::obs::log_bucket_bounds(1.0, 1.0e6, 1.08));
  // Uniform 1..10000: exact quantiles are known, so the estimator must
  // land within one bucket's relative width (~8%, interpolation halves
  // that in expectation; assert the conservative bound).
  for (int v = 1; v <= 10000; ++v) hist.record(static_cast<double>(v));
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 10000u);
  EXPECT_EQ(snap.counts.back(), 0u) << "overflow bucket must stay empty";
  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    const double exact = p / 100.0 * 10000.0;
    const double estimate = snap.quantile(p);
    EXPECT_NEAR(estimate, exact, exact * 0.08 + 1.0) << "p" << p;
  }
  // Quantiles are monotone in p.
  EXPECT_LE(snap.quantile(50.0), snap.quantile(95.0));
  EXPECT_LE(snap.quantile(95.0), snap.quantile(99.0));
}

TEST(Metrics, QuantileEdgeCases) {
  xfl::obs::Histogram hist(xfl::obs::log_bucket_bounds(1.0, 100.0, 2.0));
  // Empty snapshot: every quantile is 0, including the extremes.
  const auto empty = hist.snapshot();
  EXPECT_EQ(empty.quantile(50.0), 0.0) << "empty histogram";
  EXPECT_EQ(empty.quantile(0.0), 0.0);
  EXPECT_EQ(empty.quantile(100.0), 0.0);
  // A single sample: every quantile resolves inside its bucket.
  hist.record(10.0);
  const auto one = hist.snapshot();
  EXPECT_GT(one.quantile(50.0), 0.0);
  EXPECT_LE(one.quantile(50.0), 16.0);  // Bucket (8, 16] holds the sample.
  EXPECT_GT(one.quantile(50.0), 8.0);
  // The extremes stay inside that one populated bucket too — q=0 and
  // q=100 never step outside the instrumented range or invert.
  EXPECT_LE(one.quantile(0.0), one.quantile(50.0));
  EXPECT_LE(one.quantile(50.0), one.quantile(100.0));
  EXPECT_LE(one.quantile(100.0), 16.0);
  // Overflow samples clamp to the highest finite bound instead of
  // inventing a value beyond the instrumented range.
  xfl::obs::Histogram overflow(xfl::obs::log_bucket_bounds(1.0, 100.0, 2.0));
  for (int i = 0; i < 10; ++i) overflow.record(1.0e9);
  const auto snap = overflow.snapshot();
  EXPECT_EQ(snap.quantile(50.0), snap.upper_bounds.back());
  EXPECT_EQ(snap.quantile(99.0), snap.upper_bounds.back());
  EXPECT_EQ(snap.quantile(0.0), snap.upper_bounds.back());
  EXPECT_EQ(snap.quantile(100.0), snap.upper_bounds.back());
  // A histogram with no finite bounds at all routes everything to the
  // overflow bucket; quantiles must answer 0 rather than reading
  // upper_bounds.back() of an empty vector.
  xfl::obs::Histogram unbounded((std::vector<double>()));
  for (int i = 0; i < 5; ++i) unbounded.record(123.0);
  const auto bare = unbounded.snapshot();
  EXPECT_EQ(bare.count, 5u);
  EXPECT_EQ(bare.quantile(0.0), 0.0);
  EXPECT_EQ(bare.quantile(50.0), 0.0);
  EXPECT_EQ(bare.quantile(100.0), 0.0);
}

TEST(Metrics, RegistryExportsCarryQuantilesForPopulatedHistograms) {
  Registry::instance().reset();
  auto& hist = xfl::obs::histogram(
      "test.obs.quantile_hist",
      xfl::obs::quantile_latency_bounds_us());
  for (int i = 1; i <= 100; ++i) hist.record(static_cast<double>(i));
  const std::string json = Registry::instance().to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  std::ostringstream text;
  Registry::instance().write_text(text);
  EXPECT_NE(text.str().find("p50="), std::string::npos);
  EXPECT_NE(text.str().find("p99="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracing.

/// Serialises the trace tests (tracing state is process-global) and
/// restores the disabled default afterwards.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    xfl::obs::clear_trace();
    xfl::obs::set_tracing_enabled(true);
  }
  void TearDown() override {
    xfl::obs::set_tracing_enabled(false);
    xfl::obs::clear_trace();
  }
};

TEST_F(TraceTest, SpansNestWithDepths) {
  {
    XFL_SPAN("outer");
    {
      XFL_SPAN("inner");
      { XFL_SPAN("innermost"); }
    }
    { XFL_SPAN("inner2"); }
  }
  const auto events = xfl::obs::trace_events();
  ASSERT_EQ(events.size(), 4u);
  int depth_of_outer = -1, depth_of_inner = -1, depth_of_innermost = -1;
  for (const auto& event : events) {
    const std::string name = event.name;
    if (name == "outer") depth_of_outer = event.depth;
    if (name == "inner") depth_of_inner = event.depth;
    if (name == "innermost") depth_of_innermost = event.depth;
  }
  EXPECT_EQ(depth_of_outer, 0);
  EXPECT_EQ(depth_of_inner, 1);
  EXPECT_EQ(depth_of_innermost, 2);
  // Containment: outer's interval covers inner's.
  const auto find = [&](const std::string& name) {
    for (const auto& event : events)
      if (name == event.name) return event;
    return xfl::obs::TraceEvent{};
  };
  const auto outer = find("outer");
  const auto inner = find("inner");
  EXPECT_LE(outer.ts_us, inner.ts_us);
  EXPECT_GE(outer.ts_us + outer.dur_us, inner.ts_us + inner.dur_us);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  xfl::obs::set_tracing_enabled(false);
  { XFL_SPAN("ghost"); }
  EXPECT_TRUE(xfl::obs::trace_events().empty());
}

TEST_F(TraceTest, PerThreadBuffersSurviveThreadExit) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([] { XFL_SPAN("worker"); });
  for (auto& thread : threads) thread.join();
  const auto events = xfl::obs::trace_events();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads));
  // Distinct threads get distinct tids.
  std::vector<std::uint32_t> tids;
  for (const auto& event : events) tids.push_back(event.tid);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
}

TEST_F(TraceTest, ChromeTraceJsonWellFormed) {
  {
    XFL_SPAN("json.outer");
    { XFL_SPAN("json.inner"); }
  }
  std::ostringstream out;
  xfl::obs::write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"json.inner\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Logger.

/// Captures log output through a tmpfile sink, restoring the default
/// configuration afterwards.
class LogCapture {
 public:
  explicit LogCapture(xfl::obs::LogLevel level, bool json) {
    file_ = std::tmpfile();
    xfl::obs::configure_logging({level, json, file_});
  }
  ~LogCapture() {
    xfl::obs::configure_logging({});
    std::fclose(file_);
  }
  std::string text() const {
    std::fflush(file_);
    std::string out;
    std::rewind(file_);
    char buffer[4096];
    std::size_t n;
    while ((n = std::fread(buffer, 1, sizeof buffer, file_)) > 0)
      out.append(buffer, n);
    return out;
  }

 private:
  std::FILE* file_;
};

TEST(Log, TextFormatCarriesMessageAndFields) {
  LogCapture capture(xfl::obs::LogLevel::kDebug, /*json=*/false);
  XFL_LOG(info) << "hello obs" << xfl::obs::kv("rows", 42)
                << xfl::obs::kv("name", std::string("edge"));
  const std::string text = capture.text();
  EXPECT_NE(text.find("[info]"), std::string::npos);
  EXPECT_NE(text.find("hello obs"), std::string::npos);
  EXPECT_NE(text.find("rows=42"), std::string::npos);
  EXPECT_NE(text.find("name=edge"), std::string::npos);
}

TEST(Log, RecordsBelowRuntimeLevelAreDropped) {
  LogCapture capture(xfl::obs::LogLevel::kWarn, /*json=*/false);
  XFL_LOG(info) << "invisible";
  XFL_LOG(warn) << "visible";
  const std::string text = capture.text();
  EXPECT_EQ(text.find("invisible"), std::string::npos);
  EXPECT_NE(text.find("visible"), std::string::npos);
}

TEST(Log, JsonLinesAreWellFormed) {
  LogCapture capture(xfl::obs::LogLevel::kDebug, /*json=*/true);
  XFL_LOG(warn) << "quote\" and \\slash" << xfl::obs::kv("n", 7)
                << xfl::obs::kv("flag", true);
  const std::string text = capture.text();
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(json_well_formed(text)) << text;
  EXPECT_NE(text.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(text.find("\"n\":7"), std::string::npos);
  EXPECT_NE(text.find("\"flag\":true"), std::string::npos);
}

TEST(Log, ConcurrentWritersProduceIntactLines) {
  LogCapture capture(xfl::obs::LogLevel::kDebug, /*json=*/false);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i)
        XFL_LOG(info) << "line" << xfl::obs::kv("thread", t)
                      << xfl::obs::kv("i", i);
    });
  for (auto& thread : threads) thread.join();
  const std::string text = capture.text();
  std::size_t lines = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    // Each sink write is one whole record: every line carries the marker.
    EXPECT_NE(line.find("line"), std::string::npos) << line;
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(Log, ParseLevelRoundTrip) {
  xfl::obs::LogLevel level = xfl::obs::LogLevel::kOff;
  EXPECT_TRUE(xfl::obs::parse_log_level("debug", level));
  EXPECT_EQ(level, xfl::obs::LogLevel::kDebug);
  EXPECT_TRUE(xfl::obs::parse_log_level("off", level));
  EXPECT_EQ(level, xfl::obs::LogLevel::kOff);
  EXPECT_FALSE(xfl::obs::parse_log_level("loud", level));
}

}  // namespace
