// Golden round-trip suite: committed fixture models (tests/data, regenerated
// only deliberately via tools/make_golden_fixtures) must keep loading, must
// re-save byte-identically, and must reproduce their committed predictions.
// Any accidental serialization-format or inference change fails here first.
// Plus load-hardening: truncated prefixes and field-swapped mutations of the
// golden files must throw, never crash or mis-load.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <algorithm>
#include <cmath>

#include "common/csv.hpp"
#include "core/predictor.hpp"
#include "ml/gbt.hpp"
#include "ml/gbt_flat.hpp"

namespace xfl {
namespace {

std::string data_path(const std::string& name) {
  return std::string(XFL_TEST_DATA_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Every proper prefix ending at these cut points must throw, not crash,
/// hang, or quietly yield a model.
std::vector<std::size_t> cut_points(std::size_t size) {
  return {32, size / 4, size / 2, 3 * size / 4, size - 10};
}

// --- GradientBoostedTrees golden fixture ------------------------------

TEST(GoldenGbt, ResavesByteIdentical) {
  const std::string text = slurp(data_path("golden_gbt.txt"));
  std::istringstream in(text);
  const auto model = ml::GradientBoostedTrees::load(in);
  ASSERT_TRUE(model.fitted());
  std::ostringstream out;
  model.save(out);
  EXPECT_EQ(out.str(), text);
}

TEST(GoldenGbt, PredictionsMatchCommitted) {
  std::istringstream in(slurp(data_path("golden_gbt.txt")));
  const auto model = ml::GradientBoostedTrees::load(in);

  const auto rows = read_csv_file(data_path("golden_gbt_predictions.csv"));
  ASSERT_GT(rows.size(), 1u);
  ml::Matrix x;
  std::vector<double> expected;
  for (std::size_t r = 1; r < rows.size(); ++r) {  // Row 0 is the header.
    ASSERT_EQ(rows[r].size(), 7u) << "fixture row " << r;
    std::vector<double> features(6);
    for (std::size_t c = 0; c < 6; ++c) features[c] = std::stod(rows[r][c]);
    x.push_row(features);
    expected.push_back(std::stod(rows[r][6]));
  }

  // Committed values were written with %.17g, so they round-trip exactly:
  // the loaded model must reproduce them to the last bit, per row and
  // through the batch engine alike.
  std::vector<double> batch(x.rows());
  model.predict_batch(x, batch);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    EXPECT_EQ(model.predict(x.row(r)), expected[r]) << "row " << r;
    EXPECT_EQ(model.predict_nodewalk(x.row(r)), expected[r]) << "row " << r;
    EXPECT_EQ(batch[r], expected[r]) << "row " << r;
  }
}

/// Median absolute percentage error of `got` against `want` (both > 0 in
/// the fixtures; guard anyway so a zero fixture fails loudly, not by /0).
double mdape_pct(const std::vector<double>& got,
                 const std::vector<double>& want) {
  EXPECT_EQ(got.size(), want.size());
  std::vector<double> ape;
  ape.reserve(got.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NE(want[i], 0.0) << "degenerate fixture row " << i;
    ape.push_back(std::fabs(got[i] - want[i]) / std::fabs(want[i]) * 100.0);
  }
  std::sort(ape.begin(), ape.end());
  const std::size_t n = ape.size();
  return n % 2 == 1 ? ape[n / 2] : 0.5 * (ape[n / 2 - 1] + ape[n / 2]);
}

// Kernel-family accuracy sweep on the committed fixture: every kernel the
// host can run must land within 0.1% absolute MdAPE of the exact scalar
// kernel. The family is in fact bit-identical (the quantized form is
// lossless), so the per-row assertion is EXPECT_EQ and the MdAPE gap is
// exactly zero — the 0.1% ceiling is the documented contract this test
// would still enforce if a future kernel traded bits for speed.
TEST(GoldenGbt, KernelFamilyMatchesCommittedPredictions) {
  std::istringstream in(slurp(data_path("golden_gbt.txt")));
  const auto model = ml::GradientBoostedTrees::load(in);

  const auto rows = read_csv_file(data_path("golden_gbt_predictions.csv"));
  ASSERT_GT(rows.size(), 1u);
  ml::Matrix x;
  std::vector<double> expected;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    std::vector<double> features(6);
    for (std::size_t c = 0; c < 6; ++c) features[c] = std::stod(rows[r][c]);
    x.push_row(features);
    expected.push_back(std::stod(rows[r][6]));
  }

  const ml::FlatEnsemble& flat = model.flat();
  std::vector<double> exact(x.rows());
  flat.predict_batch(x, exact, nullptr, ml::Kernel::kScalar);
  const double exact_mdape = mdape_pct(exact, expected);
  EXPECT_EQ(exact_mdape, 0.0);  // %.17g fixtures round-trip exactly.

  for (const ml::Kernel kernel :
       {ml::Kernel::kAvx2, ml::Kernel::kQuantized}) {
    if (flat.effective_kernel(kernel) != kernel) continue;
    std::vector<double> got(x.rows());
    flat.predict_batch(x, got, nullptr, kernel);
    EXPECT_LE(std::fabs(mdape_pct(got, expected) - exact_mdape), 0.1)
        << ml::kernel_name(kernel);
    for (std::size_t r = 0; r < x.rows(); ++r)
      EXPECT_EQ(got[r], exact[r])
          << ml::kernel_name(kernel) << " row " << r;
  }
}

TEST(GoldenGbt, TruncatedPrefixesThrow) {
  const std::string text = slurp(data_path("golden_gbt.txt"));
  ASSERT_GT(text.size(), 64u);
  for (const std::size_t cut : cut_points(text.size())) {
    std::istringstream in(text.substr(0, cut));
    EXPECT_THROW(ml::GradientBoostedTrees::load(in), std::runtime_error)
        << "prefix of " << cut << " bytes";
  }
}

TEST(GoldenGbt, FieldSwappedMagicRejected) {
  std::string text = slurp(data_path("golden_gbt.txt"));
  text.replace(0, 3, "lfx");  // xfl-gbt-v1 -> lfx-gbt-v1.
  std::istringstream in(text);
  EXPECT_THROW(ml::GradientBoostedTrees::load(in), std::runtime_error);
}

// --- TransferPredictor golden fixture ---------------------------------

TEST(GoldenPredictor, ResavesByteIdentical) {
  const std::string text = slurp(data_path("golden_predictor.txt"));
  std::istringstream in(text);
  const auto predictor = core::TransferPredictor::load(in);
  ASSERT_TRUE(predictor.fitted());
  std::ostringstream out;
  predictor.save(out);
  EXPECT_EQ(out.str(), text);
}

TEST(GoldenPredictor, PredictionsMatchCommitted) {
  std::istringstream in(slurp(data_path("golden_predictor.txt")));
  const auto predictor = core::TransferPredictor::load(in);

  const auto rows =
      read_csv_file(data_path("golden_predictor_predictions.csv"));
  ASSERT_GT(rows.size(), 1u);
  std::vector<core::PlannedTransfer> planned;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    ASSERT_EQ(rows[r].size(), 10u) << "fixture row " << r;
    core::PlannedTransfer transfer;
    transfer.src = static_cast<endpoint::EndpointId>(std::stoul(rows[r][0]));
    transfer.dst = static_cast<endpoint::EndpointId>(std::stoul(rows[r][1]));
    transfer.bytes = std::stod(rows[r][2]);
    transfer.files = std::stoull(rows[r][3]);
    transfer.dirs = std::stoull(rows[r][4]);
    transfer.concurrency =
        static_cast<std::uint32_t>(std::stoul(rows[r][5]));
    transfer.parallelism =
        static_cast<std::uint32_t>(std::stoul(rows[r][6]));
    planned.push_back(transfer);

    const auto interval = predictor.predict_rate_interval(transfer);
    EXPECT_EQ(interval.expected_mbps, std::stod(rows[r][7])) << "row " << r;
    EXPECT_EQ(interval.low_mbps, std::stod(rows[r][8])) << "row " << r;
    EXPECT_EQ(interval.high_mbps, std::stod(rows[r][9])) << "row " << r;
  }

  // The grouped batch path answers exactly like the per-call path.
  const auto batch = predictor.predict_rates_mbps(planned);
  ASSERT_EQ(batch.size(), planned.size());
  for (std::size_t i = 0; i < planned.size(); ++i)
    EXPECT_EQ(batch[i], predictor.predict_rate_mbps(planned[i])) << "row " << i;
}

TEST(GoldenPredictor, TruncatedPrefixesThrow) {
  const std::string text = slurp(data_path("golden_predictor.txt"));
  ASSERT_GT(text.size(), 64u);
  for (const std::size_t cut : cut_points(text.size())) {
    std::istringstream in(text.substr(0, cut));
    EXPECT_THROW(core::TransferPredictor::load(in), std::runtime_error)
        << "prefix of " << cut << " bytes";
  }
}

TEST(GoldenPredictor, FieldSwappedLabelRejected) {
  std::string text = slurp(data_path("golden_predictor.txt"));
  const auto at = text.find("edge-model");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 10, "edgy-model");  // Same length, wrong label.
  std::istringstream in(text);
  EXPECT_THROW(core::TransferPredictor::load(in), std::runtime_error);
}

TEST(GoldenPredictor, ShrunkFeatureCountRejected) {
  // Decrement a feature-name count so the moment block no longer lines up
  // — the count/moment cross-check must catch the swap.
  std::string text = slurp(data_path("golden_predictor.txt"));
  const auto label = text.find("edge-model\n");
  ASSERT_NE(label, std::string::npos);
  const auto count_at = label + std::string("edge-model\n").size();
  ASSERT_EQ(text.substr(count_at, 3), "15 ");
  text.replace(count_at, 2, "14");
  std::istringstream in(text);
  EXPECT_THROW(core::TransferPredictor::load(in), std::runtime_error);
}

TEST(GoldenPredictor, LoadedModelServesBatchQueries) {
  std::istringstream in(slurp(data_path("golden_predictor.txt")));
  const auto predictor = core::TransferPredictor::load(in);
  // A mixed batch spanning per-edge models and the global fallback.
  std::vector<core::PlannedTransfer> planned;
  for (std::uint32_t s = 0; s < 3; ++s) {
    core::PlannedTransfer transfer;
    transfer.src = s;
    transfer.dst = (s + 1) % 3;
    transfer.bytes = 1e9 * static_cast<double>(s + 1);
    planned.push_back(transfer);
    transfer.dst = 77;  // No history: global fallback.
    planned.push_back(transfer);
  }
  const auto rates = predictor.predict_rates_mbps(planned);
  ASSERT_EQ(rates.size(), planned.size());
  for (std::size_t i = 0; i < planned.size(); ++i) {
    EXPECT_GT(rates[i], 0.0);
    EXPECT_EQ(rates[i], predictor.predict_rate_mbps(planned[i]));
  }
}

}  // namespace
}  // namespace xfl
