// Property and fuzz coverage for the length-prefixed binary frame codec,
// plus the end-to-end contract that matters most: a JSON client and a
// binary client asking the same server the same question get the same
// double, bit for bit.
//   - encode/decode round-trips over randomized requests and replies;
//   - truncation at EVERY byte offset of a valid frame is kNeedMore —
//     never a frame, never a crash, never a read past the buffer;
//   - random garbage decodes to *something* without UB (bounds-checked
//     cursor, all-or-nothing reads);
//   - interleaved JSON + binary connections on one server, including
//     kJson-wrapped admin traffic on a binary connection.
// Tier2-serve label: runs under the sanitizer configurations too, which
// is what turns "never UB" from a comment into a checked property.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "core/predictor.hpp"
#include "serve/client.hpp"
#include "serve/model_host.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/scenario.hpp"

namespace xfl::serve {
namespace {

core::PlannedTransfer random_transfer(std::mt19937& rng) {
  core::PlannedTransfer planned;
  planned.src = std::uniform_int_distribution<endpoint::EndpointId>(0, 64)(rng);
  planned.dst = std::uniform_int_distribution<endpoint::EndpointId>(0, 64)(rng);
  planned.bytes =
      std::uniform_real_distribution<double>(1.0, 1e14)(rng);
  planned.files = std::uniform_int_distribution<std::uint64_t>(1, 1 << 20)(rng);
  planned.dirs = std::uniform_int_distribution<std::uint64_t>(1, 1 << 10)(rng);
  planned.concurrency =
      std::uniform_int_distribution<std::uint32_t>(1, 64)(rng);
  planned.parallelism =
      std::uniform_int_distribution<std::uint32_t>(1, 64)(rng);
  return planned;
}

features::ContentionFeatures random_load(std::mt19937& rng) {
  features::ContentionFeatures load;
  std::uniform_real_distribution<double> value(0.0, 5000.0);
  load.k_sout = value(rng);
  load.k_din = value(rng);
  load.g_src = value(rng);
  load.g_dst = value(rng);
  load.s_sout = value(rng);
  load.s_din = value(rng);
  return load;
}

// ------------------------------------------------------------ round trips

TEST(ServeBinaryCodec, PredictRequestRoundTripsRandomized) {
  std::mt19937 rng(1234);
  for (int round = 0; round < 500; ++round) {
    const auto planned = random_transfer(rng);
    const auto load = round % 3 == 0 ? features::ContentionFeatures{}
                                     : random_load(rng);
    const std::uint64_t id =
        std::uniform_int_distribution<std::uint64_t>(0, ~0ull)(rng);
    const std::uint64_t deadline_ms =
        std::uniform_int_distribution<std::uint64_t>(0, 86400000)(rng);
    const std::string wire =
        binary_predict_request(id, planned, load, deadline_ms);

    const BinaryDecode decoded = decode_binary_frame(wire);
    ASSERT_EQ(decoded.status, BinaryDecode::Status::kFrame);
    ASSERT_EQ(decoded.type, BinaryType::kPredict);
    ASSERT_EQ(decoded.consumed, wire.size());

    const Frame frame = parse_binary_predict(decoded.payload);
    ASSERT_EQ(frame.kind, Frame::Kind::kPredict) << frame.error;
    EXPECT_TRUE(frame.predict.binary);
    EXPECT_EQ(frame.predict.binary_id, id);
    EXPECT_EQ(frame.predict.transfer.src, planned.src);
    EXPECT_EQ(frame.predict.transfer.dst, planned.dst);
    EXPECT_EQ(frame.predict.transfer.bytes, planned.bytes);  // Bit-exact.
    EXPECT_EQ(frame.predict.transfer.files, planned.files);
    EXPECT_EQ(frame.predict.transfer.dirs, planned.dirs);
    EXPECT_EQ(frame.predict.transfer.concurrency, planned.concurrency);
    EXPECT_EQ(frame.predict.transfer.parallelism, planned.parallelism);
    EXPECT_EQ(frame.predict.deadline_ms, deadline_ms);
    EXPECT_EQ(frame.predict.load.k_sout, load.k_sout);
    EXPECT_EQ(frame.predict.load.k_din, load.k_din);
    EXPECT_EQ(frame.predict.load.g_src, load.g_src);
    EXPECT_EQ(frame.predict.load.g_dst, load.g_dst);
    EXPECT_EQ(frame.predict.load.s_sout, load.s_sout);
    EXPECT_EQ(frame.predict.load.s_din, load.s_din);
  }
}

TEST(ServeBinaryCodec, ReplyFramesRoundTripRandomized) {
  std::mt19937 rng(99);
  std::uniform_int_distribution<std::uint64_t> u64(0, ~0ull);
  std::uniform_real_distribution<double> rate(0.0, 1e6);
  for (int round = 0; round < 500; ++round) {
    const std::uint64_t id = u64(rng);
    const std::uint64_t version = u64(rng) % 10000;
    const std::uint64_t trace = u64(rng);
    const double mbps = rate(rng);
    const double server_ms = rate(rng) / 1000.0;
    const bool edge = round % 2 == 0;
    const std::string wire = binary_predict_response(
        id, mbps, edge, version, trace, server_ms);
    const BinaryDecode decoded = decode_binary_frame(wire);
    ASSERT_EQ(decoded.status, BinaryDecode::Status::kFrame);
    ASSERT_EQ(decoded.type, BinaryType::kPredictOk);
    const BinaryPredictReply reply =
        parse_binary_reply(decoded.type, decoded.payload);
    EXPECT_TRUE(reply.ok);
    EXPECT_EQ(reply.id, id);
    EXPECT_EQ(reply.rate_mbps, mbps);  // Bit-exact, the protocol's point.
    EXPECT_EQ(reply.edge_model, edge);
    EXPECT_EQ(reply.model_version, version);
    EXPECT_EQ(reply.trace_id, trace);
    EXPECT_EQ(reply.server_ms, server_ms);
  }
}

TEST(ServeBinaryCodec, ErrorFramesRoundTripWithArbitraryMessages) {
  std::mt19937 rng(7);
  for (int round = 0; round < 200; ++round) {
    // Messages with embedded NULs and high bytes: binary framing should
    // not care what the text contains.
    std::string message;
    const std::size_t length =
        std::uniform_int_distribution<std::size_t>(0, 300)(rng);
    for (std::size_t i = 0; i < length; ++i)
      message.push_back(static_cast<char>(
          std::uniform_int_distribution<int>(0, 255)(rng)));
    const std::uint64_t id =
        std::uniform_int_distribution<std::uint64_t>(0, ~0ull)(rng);
    const std::string wire =
        binary_error_response(id, kErrOverloaded, message, 42, 1.5);
    const BinaryDecode decoded = decode_binary_frame(wire);
    ASSERT_EQ(decoded.status, BinaryDecode::Status::kFrame);
    ASSERT_EQ(decoded.type, BinaryType::kError);
    const BinaryPredictReply reply =
        parse_binary_reply(decoded.type, decoded.payload);
    EXPECT_FALSE(reply.ok);
    EXPECT_EQ(reply.id, id);
    EXPECT_EQ(reply.error, kErrOverloaded);
    EXPECT_EQ(reply.message, message);
    EXPECT_EQ(reply.trace_id, 42u);
  }
}

TEST(ServeBinaryCodec, JsonFrameWrapsAndStripsNewlines) {
  const std::string wire = binary_json_frame("{\"cmd\":\"ping\"}\n");
  const BinaryDecode decoded = decode_binary_frame(wire);
  ASSERT_EQ(decoded.status, BinaryDecode::Status::kFrame);
  ASSERT_EQ(decoded.type, BinaryType::kJson);
  EXPECT_EQ(decoded.payload, "{\"cmd\":\"ping\"}");
}

// ------------------------------------------------------------- truncation

TEST(ServeBinaryCodec, TruncationAtEveryByteOffsetNeedsMore) {
  std::mt19937 rng(55);
  std::vector<std::string> frames;
  frames.push_back(binary_predict_request(17, random_transfer(rng),
                                          random_load(rng), 2500));
  frames.push_back(binary_predict_response(9, 312.5, true, 3, 1009, 0.42));
  frames.push_back(binary_error_response(1, kErrTimeout, "too slow", 7, 9.0));
  frames.push_back(binary_json_frame("{\"cmd\":\"stats\"}"));
  for (const std::string& frame : frames) {
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      const BinaryDecode decoded =
          decode_binary_frame(std::string_view(frame).substr(0, cut));
      EXPECT_EQ(decoded.status, BinaryDecode::Status::kNeedMore)
          << "frame of " << frame.size() << " cut at " << cut;
    }
    // And the full frame still decodes after all that.
    EXPECT_EQ(decode_binary_frame(frame).status,
              BinaryDecode::Status::kFrame);
  }
}

TEST(ServeBinaryCodec, TruncatedPayloadsThrowInsteadOfMisreading) {
  // parse_binary_reply on a cut-down payload must throw (structured
  // channel gone), never read past the end or fabricate fields.
  const std::string wire =
      binary_predict_response(12, 100.0, false, 2, 44, 1.0);
  const BinaryDecode decoded = decode_binary_frame(wire);
  ASSERT_EQ(decoded.status, BinaryDecode::Status::kFrame);
  for (std::size_t cut = 0; cut < decoded.payload.size(); ++cut)
    EXPECT_THROW(parse_binary_reply(BinaryType::kPredictOk,
                                    decoded.payload.substr(0, cut)),
                 std::exception)
        << "payload cut at " << cut;
  // Same for request payloads, which must yield kBad — not throw, the
  // server answers errors instead of dying.
  std::mt19937 rng(8);
  const std::string request = binary_predict_request(3, random_transfer(rng));
  const BinaryDecode request_decoded = decode_binary_frame(request);
  ASSERT_EQ(request_decoded.status, BinaryDecode::Status::kFrame);
  for (std::size_t cut = 0; cut < request_decoded.payload.size(); ++cut) {
    const Frame frame =
        parse_binary_predict(request_decoded.payload.substr(0, cut));
    EXPECT_EQ(frame.kind, Frame::Kind::kBad) << "payload cut at " << cut;
  }
}

TEST(ServeBinaryCodec, RandomGarbageNeverMisbehaves) {
  std::mt19937 rng(2024);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> size(0, 600);
  for (int round = 0; round < 2000; ++round) {
    std::string garbage;
    const std::size_t length = size(rng);
    garbage.reserve(length);
    for (std::size_t i = 0; i < length; ++i)
      garbage.push_back(static_cast<char>(byte(rng)));
    const BinaryDecode decoded = decode_binary_frame(garbage);
    if (decoded.status == BinaryDecode::Status::kFrame) {
      EXPECT_LE(decoded.consumed, garbage.size());
      // A lucky valid frame must still parse without UB; outcome is
      // whatever it is (kBad or a throw are both structured).
      if (decoded.type == BinaryType::kPredict) {
        const Frame frame = parse_binary_predict(decoded.payload);
        (void)frame;
      } else if (decoded.type != BinaryType::kJson) {
        try {
          (void)parse_binary_reply(decoded.type, decoded.payload);
        } catch (const std::exception&) {
        }
      }
    }
  }
}

// ----------------------------------------------------------- end to end

std::shared_ptr<const core::TransferPredictor> shared_predictor() {
  static const auto predictor = [] {
    sim::EsnetConfig config;
    config.transfers = 400;
    config.duration_s = 86400.0;
    config.seed = 31;
    const auto log = sim::make_esnet_testbed(config).run().log;
    core::TransferPredictor::Options options;
    options.min_edge_transfers = 50;
    options.gbt.trees = 10;
    auto fitted = std::make_shared<core::TransferPredictor>(options);
    fitted->fit(log);
    return std::shared_ptr<const core::TransferPredictor>(fitted);
  }();
  return predictor;
}

TEST(ServeBinaryE2E, JsonAndBinaryClientsGetBitIdenticalPredictions) {
  ModelHost host(shared_predictor());
  PredictionServer server(host, {});
  server.start();

  PredictionClient json_client("127.0.0.1", server.port());
  PredictionClient binary_client("127.0.0.1", server.port());
  binary_client.negotiate_binary();
  ASSERT_TRUE(binary_client.binary());

  std::mt19937 rng(77);
  for (int i = 0; i < 40; ++i) {
    core::PlannedTransfer planned = random_transfer(rng);
    planned.src = i % 2 == 0 ? 0 : 2;  // Stay on fitted endpoints.
    planned.dst = i % 3 == 0 ? 1 : 3;
    const auto load = i % 2 == 0 ? features::ContentionFeatures{}
                                 : random_load(rng);
    const auto json_reply = json_client.predict(planned, load);
    const auto binary_reply = binary_client.predict(planned, load);
    ASSERT_TRUE(json_reply.ok) << json_reply.message;
    ASSERT_TRUE(binary_reply.ok) << binary_reply.message;
    // The whole point of %.17g + raw IEEE bits: one server, one answer.
    EXPECT_EQ(json_reply.rate_mbps, binary_reply.rate_mbps) << "row " << i;
    EXPECT_EQ(json_reply.model, binary_reply.model);
    EXPECT_EQ(json_reply.model_version, binary_reply.model_version);
  }
  server.stop();
}

TEST(ServeBinaryE2E, AdminAndFeedbackRideKJsonFramesAfterNegotiation) {
  ModelHost host(shared_predictor());
  PredictionServer server(host, {});
  server.start();

  PredictionClient client("127.0.0.1", server.port());
  client.negotiate_binary();
  EXPECT_TRUE(client.ping());

  core::PlannedTransfer planned;
  planned.src = 0;
  planned.dst = 1;
  planned.bytes = 25.0 * kGB;
  planned.files = 10;
  const auto reply = client.predict(planned);
  ASSERT_TRUE(reply.ok);
  ASSERT_FALSE(reply.trace_id.empty());

  // Feedback joins on the trace id the packed reply carried.
  const auto feedback = client.feedback(reply.trace_id, reply.rate_mbps);
  EXPECT_TRUE(feedback.ok);
  EXPECT_TRUE(feedback.matched);

  const auto stats = client.stats();
  const auto* requests = stats.find("requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_GE(requests->number, 1.0);
  const auto* shards = stats.find("shards");
  ASSERT_NE(shards, nullptr);
  EXPECT_GE(shards->number, 1.0);
  server.stop();
}

TEST(ServeBinaryE2E, MagicMidStreamUpgradesAtFrameBoundaryOnly) {
  ModelHost host(shared_predictor());
  PredictionServer server(host, {});
  server.start();

  PredictionClient client("127.0.0.1", server.port());
  // JSON round trip first, then upgrade, then a packed round trip: the
  // same connection serves both framings in sequence.
  core::PlannedTransfer planned;
  planned.src = 0;
  planned.dst = 1;
  planned.bytes = 4.0 * kGB;
  planned.files = 2;
  const auto before = client.predict(planned);
  ASSERT_TRUE(before.ok);
  client.negotiate_binary();
  const auto after = client.predict(planned);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(before.rate_mbps, after.rate_mbps);
  server.stop();
}

}  // namespace
}  // namespace xfl::serve
