#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "ml/linreg.hpp"
#include "ml/matrix.hpp"
#include "ml/scaler.hpp"

namespace xfl::ml {
namespace {

TEST(Matrix, ConstructAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(Matrix, BoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), xfl::ContractViolation);
  EXPECT_THROW(m.at(0, 2), xfl::ContractViolation);
}

TEST(Matrix, PushRowDefinesWidth) {
  Matrix m;
  const std::vector<double> row = {1.0, 2.0};
  m.push_row(row);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.rows(), 1u);
  const std::vector<double> bad = {1.0, 2.0, 3.0};
  EXPECT_THROW(m.push_row(bad), xfl::ContractViolation);
}

TEST(Matrix, RowSpanAndColumn) {
  Matrix m(2, 2);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 2.0;
  m.at(1, 0) = 3.0;
  m.at(1, 1) = 4.0;
  const auto row = m.row(1);
  EXPECT_DOUBLE_EQ(row[0], 3.0);
  const auto col = m.column(1);
  EXPECT_DOUBLE_EQ(col[0], 2.0);
  EXPECT_DOUBLE_EQ(col[1], 4.0);
}

TEST(Matrix, SelectColumnsAndRows) {
  Matrix m(2, 3);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      m.at(r, c) = static_cast<double>(10 * r + c);
  const auto cols = m.select_columns({true, false, true});
  EXPECT_EQ(cols.cols(), 2u);
  EXPECT_DOUBLE_EQ(cols.at(1, 1), 12.0);
  const auto rows = m.select_rows({1});
  EXPECT_EQ(rows.rows(), 1u);
  EXPECT_DOUBLE_EQ(rows.at(0, 0), 10.0);
}

TEST(LeastSquares, SolvesExactSystem) {
  // y = 2 x1 - 3 x2 + 1 with 4 exact points and an intercept column.
  Matrix a(4, 3);
  const double xs[4][2] = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  std::vector<double> b(4);
  for (std::size_t i = 0; i < 4; ++i) {
    a.at(i, 0) = 1.0;
    a.at(i, 1) = xs[i][0];
    a.at(i, 2) = xs[i][1];
    b[i] = 1.0 + 2.0 * xs[i][0] - 3.0 * xs[i][1];
  }
  const auto x = solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
  EXPECT_NEAR(x[2], -3.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedMinimisesResidual) {
  // Noisy line fit should land near the true slope.
  Rng rng(3);
  const std::size_t n = 500;
  Matrix a(n, 2);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    a.at(i, 0) = 1.0;
    a.at(i, 1) = x;
    b[i] = 4.0 - 2.5 * x + rng.normal(0.0, 0.1);
  }
  const auto solution = solve_least_squares(a, b);
  EXPECT_NEAR(solution[0], 4.0, 0.05);
  EXPECT_NEAR(solution[1], -2.5, 0.05);
}

TEST(LeastSquares, DegenerateColumnDoesNotExplode) {
  Matrix a(4, 2);
  std::vector<double> b = {1.0, 2.0, 3.0, 4.0};
  for (std::size_t i = 0; i < 4; ++i) {
    a.at(i, 0) = 1.0;
    a.at(i, 1) = 0.0;  // All-zero column.
  }
  const auto x = solve_least_squares(a, b);
  EXPECT_TRUE(std::isfinite(x[0]));
  EXPECT_TRUE(std::isfinite(x[1]));
  EXPECT_NEAR(x[0], 2.5, 1e-6);  // Mean of b.
}

TEST(LeastSquares, ContractChecks) {
  Matrix a(2, 3);  // Underdetermined.
  std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(solve_least_squares(a, b), xfl::ContractViolation);
}

TEST(LinearRegression, RecoversKnownCoefficients) {
  Rng rng(11);
  const std::size_t n = 1000;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) x.at(i, c) = rng.normal();
    y[i] = 7.0 + 1.5 * x.at(i, 0) - 0.5 * x.at(i, 1) + 3.0 * x.at(i, 2);
  }
  LinearRegression model;
  model.fit(x, y);
  EXPECT_NEAR(model.intercept(), 7.0, 1e-8);
  EXPECT_NEAR(model.coefficients()[0], 1.5, 1e-8);
  EXPECT_NEAR(model.coefficients()[1], -0.5, 1e-8);
  EXPECT_NEAR(model.coefficients()[2], 3.0, 1e-8);
  EXPECT_NEAR(model.r_squared(x, y), 1.0, 1e-10);
}

TEST(LinearRegression, PredictSingleAndBatchAgree) {
  Matrix x(3, 1);
  x.at(0, 0) = 1.0;
  x.at(1, 0) = 2.0;
  x.at(2, 0) = 3.0;
  const std::vector<double> y = {2.0, 4.0, 6.0};
  LinearRegression model;
  model.fit(x, y);
  const auto batch = model.predict(x);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(batch[i], model.predict(x.row(i)));
}

TEST(LinearRegression, RequiresFitBeforePredict) {
  LinearRegression model;
  const std::vector<double> features = {1.0};
  EXPECT_THROW(model.predict(features), xfl::ContractViolation);
}

TEST(LinearRegression, RSquaredNegativeForBadModel) {
  // Fit on one regime, evaluate on an adversarial one.
  Matrix x_train(3, 1), x_test(3, 1);
  const std::vector<double> y_train = {1.0, 2.0, 3.0};
  const std::vector<double> y_test = {30.0, -10.0, 5.0};
  for (std::size_t i = 0; i < 3; ++i) {
    x_train.at(i, 0) = static_cast<double>(i);
    x_test.at(i, 0) = static_cast<double>(i);
  }
  LinearRegression model;
  model.fit(x_train, y_train);
  EXPECT_LT(model.r_squared(x_test, y_test), 0.5);
}

TEST(Scaler, ZeroMeanUnitVariance) {
  Rng rng(13);
  Matrix x(500, 2);
  for (std::size_t i = 0; i < 500; ++i) {
    x.at(i, 0) = rng.normal(100.0, 25.0);
    x.at(i, 1) = rng.uniform(0.0, 1e9);
  }
  StandardScaler scaler;
  const auto scaled = scaler.fit_transform(x);
  for (std::size_t c = 0; c < 2; ++c) {
    const auto column = scaled.column(c);
    EXPECT_NEAR(xfl::mean(column), 0.0, 1e-9);
    EXPECT_NEAR(xfl::stddev(column), 1.0, 1e-9);
  }
}

TEST(Scaler, ConstantColumnCentredOnly) {
  Matrix x(3, 1);
  for (std::size_t i = 0; i < 3; ++i) x.at(i, 0) = 5.0;
  StandardScaler scaler;
  const auto scaled = scaler.fit_transform(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(scaled.at(i, 0), 0.0);
}

TEST(Scaler, TransformUsesTrainingStatistics) {
  Matrix train(2, 1), test(1, 1);
  train.at(0, 0) = 0.0;
  train.at(1, 0) = 2.0;  // mean 1, population sd 1.
  test.at(0, 0) = 3.0;
  StandardScaler scaler;
  scaler.fit(train);
  const auto scaled = scaler.transform(test);
  EXPECT_DOUBLE_EQ(scaled.at(0, 0), 2.0);
}

TEST(Scaler, TransformBeforeFitRejected) {
  StandardScaler scaler;
  Matrix x(1, 1);
  EXPECT_THROW(scaler.transform(x), xfl::ContractViolation);
}

}  // namespace
}  // namespace xfl::ml
