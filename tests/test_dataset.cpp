#include "features/dataset.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "features/endpoint_stats.hpp"

namespace xfl::features {
namespace {

logs::TransferRecord make_record(std::uint64_t id, endpoint::EndpointId src,
                                 endpoint::EndpointId dst, double start,
                                 double duration, double bytes) {
  logs::TransferRecord r;
  r.id = id;
  r.src = src;
  r.dst = dst;
  r.start_s = start;
  r.end_s = start + duration;
  r.bytes = bytes;
  r.files = 10;
  r.dirs = 2;
  r.concurrency = 4;
  r.parallelism = 2;
  r.faults = id % 3 == 0 ? 1 : 0;
  return r;
}

logs::LogStore small_log() {
  logs::LogStore log;
  Rng rng(5);
  for (std::uint64_t i = 1; i <= 60; ++i) {
    const double start = rng.uniform(0.0, 500.0);
    log.append(make_record(i, 0, 1, start, rng.uniform(5.0, 50.0),
                           rng.uniform(1.0e8, 1.0e10)));
  }
  // A second edge for global-model coverage.
  for (std::uint64_t i = 61; i <= 100; ++i) {
    const double start = rng.uniform(0.0, 500.0);
    log.append(make_record(i, 1, 2, start, rng.uniform(5.0, 50.0),
                           rng.uniform(1.0e8, 1.0e10)));
  }
  return log;
}

TEST(Dataset, EdgeDatasetShapeAndNames) {
  const auto log = small_log();
  const auto contention = compute_contention(log);
  DatasetOptions options;
  options.load_threshold = 0.0;
  const auto dataset = build_edge_dataset(log, contention, {0, 1}, options);
  EXPECT_EQ(dataset.rows(), 60u);
  EXPECT_EQ(dataset.cols(), 15u);  // Nflt excluded by default.
  // Fig. 9 order, minus Nflt.
  EXPECT_EQ(dataset.feature_names.front(), "Ksout");
  EXPECT_EQ(dataset.feature_names.back(), "Nf");
  for (const auto& name : dataset.feature_names) EXPECT_NE(name, "Nflt");
}

TEST(Dataset, IncludeNfltAddsColumn) {
  const auto log = small_log();
  const auto contention = compute_contention(log);
  DatasetOptions options;
  options.load_threshold = 0.0;
  options.include_nflt = true;
  const auto dataset = build_edge_dataset(log, contention, {0, 1}, options);
  EXPECT_EQ(dataset.cols(), 16u);
  EXPECT_EQ(dataset.feature_names[12], "Nflt");
}

TEST(Dataset, TargetsAreRatesInMbps) {
  const auto log = small_log();
  const auto contention = compute_contention(log);
  DatasetOptions options;
  options.load_threshold = 0.0;
  const auto dataset = build_edge_dataset(log, contention, {0, 1}, options);
  for (std::size_t r = 0; r < dataset.rows(); ++r) {
    const auto& record = log[dataset.record_indices[r]];
    EXPECT_DOUBLE_EQ(dataset.y[r], to_mbps(record.rate_Bps()));
  }
}

TEST(Dataset, ThresholdFilterDropsSlowTransfers) {
  const auto log = small_log();
  const auto contention = compute_contention(log);
  DatasetOptions options;
  options.load_threshold = 0.5;
  const auto dataset = build_edge_dataset(log, contention, {0, 1}, options);
  const double cutoff = 0.5 * log.edge_max_rate({0, 1});
  EXPECT_LT(dataset.rows(), 60u);
  for (std::size_t r = 0; r < dataset.rows(); ++r)
    EXPECT_GE(log[dataset.record_indices[r]].rate_Bps(), cutoff);
}

TEST(Dataset, FeatureValuesMatchRecords) {
  const auto log = small_log();
  const auto contention = compute_contention(log);
  DatasetOptions options;
  options.load_threshold = 0.0;
  const auto dataset = build_edge_dataset(log, contention, {0, 1}, options);
  for (std::size_t r = 0; r < dataset.rows(); ++r) {
    const auto& record = log[dataset.record_indices[r]];
    const auto& features = contention[dataset.record_indices[r]];
    EXPECT_DOUBLE_EQ(dataset.x.at(r, 0), to_mbps(features.k_sout));
    EXPECT_DOUBLE_EQ(dataset.x.at(r, 2), record.concurrency);
    EXPECT_DOUBLE_EQ(dataset.x.at(r, 11), record.bytes);
    EXPECT_DOUBLE_EQ(dataset.x.at(r, 14), static_cast<double>(record.files));
  }
}

TEST(Dataset, GlobalDatasetAppendsCapabilities) {
  const auto log = small_log();
  const auto contention = compute_contention(log);
  const auto capabilities = estimate_capabilities(log, contention);
  DatasetOptions options;
  options.load_threshold = 0.0;
  const auto dataset = build_global_dataset(
      log, contention, {{0, 1}, {1, 2}}, capabilities, options);
  EXPECT_EQ(dataset.rows(), 100u);
  EXPECT_EQ(dataset.cols(), 17u);
  EXPECT_EQ(dataset.feature_names[15], "ROmax_src");
  EXPECT_EQ(dataset.feature_names[16], "RImax_dst");
  // Capability columns are per-endpoint constants.
  std::set<double> ro_values;
  for (std::size_t r = 0; r < 60; ++r) ro_values.insert(dataset.x.at(r, 15));
  EXPECT_EQ(ro_values.size(), 1u);
}

TEST(Dataset, SelectFeaturesSubsets) {
  const auto log = small_log();
  const auto contention = compute_contention(log);
  DatasetOptions options;
  options.load_threshold = 0.0;
  const auto dataset = build_edge_dataset(log, contention, {0, 1}, options);
  std::vector<bool> keep(dataset.cols(), false);
  keep[2] = true;  // C
  keep[11] = true; // Nb
  const auto reduced = dataset.select_features(keep);
  EXPECT_EQ(reduced.cols(), 2u);
  EXPECT_EQ(reduced.feature_names[0], "C");
  EXPECT_EQ(reduced.feature_names[1], "Nb");
  EXPECT_EQ(reduced.rows(), dataset.rows());
  EXPECT_DOUBLE_EQ(reduced.x.at(3, 1), dataset.x.at(3, 11));
}

TEST(Dataset, GlobalDatasetOptionalRttColumn) {
  const auto log = small_log();
  const auto contention = compute_contention(log);
  const auto capabilities = estimate_capabilities(log, contention);
  std::map<logs::EdgeKey, double> rtt = {{{0, 1}, 0.021}, {{1, 2}, 0.105}};
  DatasetOptions options;
  options.load_threshold = 0.0;
  options.edge_rtt_s = &rtt;
  const auto dataset = build_global_dataset(
      log, contention, {{0, 1}, {1, 2}}, capabilities, options);
  ASSERT_EQ(dataset.cols(), 18u);
  EXPECT_EQ(dataset.feature_names.back(), "RTT");
  // The RTT column is constant per edge and matches the supplied map.
  for (std::size_t r = 0; r < dataset.rows(); ++r) {
    const auto& record = log[dataset.record_indices[r]];
    const double expected = record.src == 0 ? 0.021 : 0.105;
    EXPECT_DOUBLE_EQ(dataset.x.at(r, 17), expected);
  }
}

TEST(Dataset, GlobalDatasetRttRequiresCompleteMap) {
  const auto log = small_log();
  const auto contention = compute_contention(log);
  const auto capabilities = estimate_capabilities(log, contention);
  std::map<logs::EdgeKey, double> rtt = {{{0, 1}, 0.021}};  // Missing {1,2}.
  DatasetOptions options;
  options.load_threshold = 0.0;
  options.edge_rtt_s = &rtt;
  EXPECT_THROW(build_global_dataset(log, contention, {{0, 1}, {1, 2}},
                                    capabilities, options),
               xfl::ContractViolation);
}

TEST(VarianceMask, DropsConstantKeepsVarying) {
  ml::Matrix x(50, 3);
  Rng rng(9);
  for (std::size_t i = 0; i < 50; ++i) {
    x.at(i, 0) = 4.0;                      // Constant (like C).
    x.at(i, 1) = rng.uniform(0.0, 100.0);  // Strongly varying.
    x.at(i, 2) = 100.0 + rng.uniform(-0.5, 0.5);  // Numerically constant.
  }
  const auto keep = variance_mask(x);
  EXPECT_FALSE(keep[0]);
  EXPECT_TRUE(keep[1]);
  EXPECT_FALSE(keep[2]);
}

TEST(VarianceMask, DropsRarelyDeviatingDiscreteColumn) {
  // A tunable that deviates from its default on 1 of 100 transfers is
  // "low variance" in the paper's sense even though its numeric variance
  // is substantial (4 -> 16 jump).
  ml::Matrix x(100, 2);
  Rng rng(11);
  for (std::size_t i = 0; i < 100; ++i) {
    x.at(i, 0) = i == 50 ? 16.0 : 4.0;
    x.at(i, 1) = rng.bernoulli(0.5) ? 2.0 : 8.0;  // Genuinely varying.
  }
  const auto keep = variance_mask(x);
  EXPECT_FALSE(keep[0]);
  EXPECT_TRUE(keep[1]);
}

TEST(VarianceMask, ZeroMeanColumnKept) {
  ml::Matrix x(50, 1);
  Rng rng(10);
  for (std::size_t i = 0; i < 50; ++i) x.at(i, 0) = rng.normal();
  EXPECT_TRUE(variance_mask(x)[0]);
}

TEST(Split, SeventyThirtyDisjointAndComplete) {
  const auto log = small_log();
  const auto contention = compute_contention(log);
  DatasetOptions options;
  options.load_threshold = 0.0;
  const auto dataset = build_edge_dataset(log, contention, {0, 1}, options);
  const auto split = split_dataset(dataset, 0.7, 42);
  EXPECT_EQ(split.train.rows() + split.test.rows(), dataset.rows());
  EXPECT_NEAR(static_cast<double>(split.train.rows()), 0.7 * 60.0, 1.0);
  std::set<std::size_t> seen;
  for (const auto i : split.train.record_indices) seen.insert(i);
  for (const auto i : split.test.record_indices) {
    EXPECT_FALSE(seen.contains(i)) << i;
    seen.insert(i);
  }
  EXPECT_EQ(seen.size(), dataset.rows());
}

TEST(Split, DeterministicPerSeedDifferentAcrossSeeds) {
  const auto log = small_log();
  const auto contention = compute_contention(log);
  DatasetOptions options;
  options.load_threshold = 0.0;
  const auto dataset = build_edge_dataset(log, contention, {0, 1}, options);
  const auto a = split_dataset(dataset, 0.7, 1);
  const auto b = split_dataset(dataset, 0.7, 1);
  const auto c = split_dataset(dataset, 0.7, 2);
  EXPECT_EQ(a.train.record_indices, b.train.record_indices);
  EXPECT_NE(a.train.record_indices, c.train.record_indices);
}

TEST(Split, ContractChecks) {
  features::Dataset dataset;
  EXPECT_THROW(split_dataset(dataset, 0.7, 1), xfl::ContractViolation);
}

}  // namespace
}  // namespace xfl::features
