// Contracts for the online prediction-accuracy/drift monitor and the
// serve-path telemetry it feeds:
//   - the windowed MdAPE the server reports after each feedback join is
//     EXACTLY the offline xfl::percentile computation over the same
//     window (both sides share one double pipeline end to end — %.17g
//     keeps the wire lossless);
//   - the drift alarm fires iff the windowed MdAPE exceeds the
//     configured threshold with enough samples, and clears again;
//   - the prediction journal is bounded with FIFO eviction, and windows
//     are isolated per model version;
//   - the `stats` admin command on a live server reports nonzero
//     counters, queue/batch histograms, and stage latency quantiles that
//     agree with client-side measurement within noise.
// The suite carries the tier2-monitor label; run it under
// -DXFL_SANITIZE=thread like the other serve suites.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "core/predictor.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/model_host.hpp"
#include "serve/monitor.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/scenario.hpp"

namespace xfl::serve {
namespace {

const logs::LogStore& shared_log() {
  static const logs::LogStore log = [] {
    sim::EsnetConfig config;
    config.transfers = 1200;
    config.duration_s = 2.0 * 86400.0;
    config.seed = 17;
    return sim::make_esnet_testbed(config).run().log;
  }();
  return log;
}

std::shared_ptr<const core::TransferPredictor> shared_model() {
  static const auto predictor = [] {
    core::TransferPredictor::Options options;
    options.min_edge_transfers = 50;
    options.gbt.trees = 40;
    auto p = std::make_shared<core::TransferPredictor>(options);
    p->fit(shared_log());
    return p;
  }();
  return predictor;
}

std::vector<core::PlannedTransfer> transfer_mix() {
  std::vector<core::PlannedTransfer> mix;
  for (int i = 0; i < 12; ++i) {
    core::PlannedTransfer planned;
    planned.src = static_cast<endpoint::EndpointId>(i % 2 == 0 ? 0 : 2);
    planned.dst = static_cast<endpoint::EndpointId>(i % 3 == 0 ? 1 : 3);
    planned.bytes = (1.0 + i) * 5.0 * kGB;
    planned.files = static_cast<std::uint64_t>(1 + i * 3);
    planned.dirs = static_cast<std::uint64_t>(1 + i % 4);
    planned.concurrency = static_cast<std::uint32_t>(1 + i % 8);
    planned.parallelism = static_cast<std::uint32_t>(1 + (i * 5) % 8);
    mix.push_back(planned);
  }
  return mix;
}

/// The exact server-side APE arithmetic, repeated offline.
double offline_ape(double observed, double predicted) {
  return std::abs(observed - predicted) / observed * 100.0;
}

/// Offline windowed MdAPE: the last `window` APEs through
/// xfl::percentile, exactly as ServeMonitor::refresh_window does it.
double offline_mdape(const std::vector<double>& apes, std::size_t window) {
  const std::size_t n = std::min(apes.size(), window);
  const std::vector<double> tail(apes.end() - static_cast<long>(n),
                                 apes.end());
  return percentile(tail, 50.0);
}

// ------------------------------------------------------------ unit level

TEST(ServeMonitor, WindowedMdapeMatchesOfflineComputationExactly) {
  ServeMonitor::Options options;
  options.drift_window = 5;
  options.drift_threshold_pct = 1e9;  // Never alarm in this test.
  ServeMonitor monitor(options);

  // Irregular predicted/observed pairs; APEs are "ugly" doubles on
  // purpose so only bit-exact agreement passes.
  const std::vector<double> predicted = {100.0, 250.5,  80.25, 333.33,
                                         60.0,  500.75, 120.5, 90.125};
  const std::vector<double> observed = {111.3,  199.99, 88.8, 400.1,
                                        57.125, 777.7,  119.9, 45.0625};
  std::vector<double> apes;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    monitor.record_prediction(i + 1, predicted[i], /*model_version=*/1);
    const auto result = monitor.record_feedback(i + 1, observed[i]);
    ASSERT_TRUE(result.matched);
    apes.push_back(offline_ape(observed[i], predicted[i]));
    // EXPECT_EQ, not NEAR: the monitor must reproduce the offline
    // computation bit for bit.
    EXPECT_EQ(result.ape_pct, apes.back());
    EXPECT_EQ(result.mdape_pct, offline_mdape(apes, options.drift_window));
    EXPECT_EQ(result.window_count,
              std::min(apes.size(), options.drift_window));
  }
  const auto stats = monitor.version_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats.at(1).feedback, predicted.size());
  EXPECT_EQ(stats.at(1).mdape_pct,
            offline_mdape(apes, options.drift_window));
}

TEST(ServeMonitor, AlarmFiresIffWindowedMdapeExceedsThreshold) {
  ServeMonitor::Options options;
  options.drift_window = 6;
  options.drift_threshold_pct = 30.0;
  options.drift_min_samples = 4;
  ServeMonitor monitor(options);

  std::uint64_t trace = 0;
  std::vector<double> apes;
  const auto feed = [&](double ape_pct) {
    // predicted chosen so offline_ape(observed=100, predicted) == ape_pct.
    monitor.record_prediction(++trace, 100.0 + ape_pct, 1);
    const auto result = monitor.record_feedback(trace, 100.0);
    apes.push_back(offline_ape(100.0, 100.0 + ape_pct));
    return result;
  };

  // Accurate feedback: below threshold, no alarm regardless of count.
  for (int i = 0; i < 6; ++i) EXPECT_FALSE(feed(10.0).alarm);
  EXPECT_FALSE(monitor.alarm_active());

  // Drift in: the alarm must rise exactly when the offline windowed
  // MdAPE first crosses the threshold — no earlier, no later.
  for (int i = 0; i < 6; ++i) {
    const auto result = feed(80.0);
    const double mdape = offline_mdape(apes, options.drift_window);
    EXPECT_EQ(result.alarm, mdape > options.drift_threshold_pct)
        << "after " << apes.size() << " feedbacks (mdape " << mdape << ")";
  }
  EXPECT_TRUE(monitor.alarm_active());
  const auto raised = monitor.version_stats().at(1);
  EXPECT_TRUE(raised.alarm);
  EXPECT_GT(raised.mdape_pct, options.drift_threshold_pct);

  // Accuracy recovers: the alarm clears when the window drops back.
  for (int i = 0; i < 6; ++i) feed(5.0);
  EXPECT_FALSE(monitor.alarm_active());
  EXPECT_FALSE(monitor.version_stats().at(1).alarm);
}

/// Captures log output through a tmpfile sink, restoring the default
/// configuration afterwards (the test_obs idiom).
class LogCapture {
 public:
  explicit LogCapture(obs::LogLevel level) {
    file_ = std::tmpfile();
    obs::configure_logging({level, /*json=*/false, file_});
  }
  ~LogCapture() {
    obs::configure_logging({});
    std::fclose(file_);
  }
  std::string text() const {
    std::fflush(file_);
    std::string out;
    std::rewind(file_);
    char buffer[4096];
    std::size_t n;
    while ((n = std::fread(buffer, 1, sizeof buffer, file_)) > 0)
      out.append(buffer, n);
    return out;
  }

 private:
  std::FILE* file_;
};

TEST(ServeMonitor, BothAlarmEdgesAreStructuredEventsAndFireTheHook) {
  ServeMonitor::Options options;
  options.drift_window = 4;
  options.drift_threshold_pct = 30.0;
  options.drift_min_samples = 2;
  ServeMonitor monitor(options);

  struct Edge {
    std::uint64_t version;
    double mdape_pct;
    bool raised;
  };
  std::vector<Edge> edges;
  monitor.set_alarm_hook(
      [&edges](std::uint64_t version, double mdape_pct, bool raised) {
        edges.push_back({version, mdape_pct, raised});
      });

  const std::uint64_t raised_before =
      obs::counter("serve.drift.alarms").value();
  const std::uint64_t cleared_before =
      obs::counter("serve.drift.cleared").value();

  std::uint64_t trace = 0;
  const auto feed = [&](double predicted, double observed) {
    monitor.record_prediction(++trace, predicted, 1);
    return monitor.record_feedback(trace, observed);
  };

  LogCapture capture(obs::LogLevel::kDebug);
  // Drift in: APE 100% until the window breaches -> exactly one rising
  // edge, regardless of how many further breaching samples arrive.
  for (int i = 0; i < 4; ++i) feed(200.0, 100.0);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_TRUE(edges[0].raised);
  EXPECT_EQ(edges[0].version, 1u);
  EXPECT_GT(edges[0].mdape_pct, options.drift_threshold_pct);

  // Recover: perfect predictions push the window back under threshold ->
  // exactly one falling edge carrying the recovering MdAPE.
  for (int i = 0; i < 4; ++i) feed(100.0, 100.0);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_FALSE(edges[1].raised);
  EXPECT_EQ(edges[1].version, 1u);
  EXPECT_LE(edges[1].mdape_pct, options.drift_threshold_pct);

  // Both edges are counted...
  EXPECT_EQ(obs::counter("serve.drift.alarms").value(), raised_before + 1);
  EXPECT_EQ(obs::counter("serve.drift.cleared").value(), cleared_before + 1);
  // ...and both are structured log events; the falling edge is not just
  // a gauge flip — it carries the recovered MdAPE for log pipelines.
  const std::string text = capture.text();
  EXPECT_NE(text.find("drift.raised"), std::string::npos) << text;
  EXPECT_NE(text.find("drift.cleared"), std::string::npos) << text;
  EXPECT_NE(text.find("recovered_mdape_pct"), std::string::npos) << text;
}

TEST(ServeMonitor, AlarmWaitsForMinimumSamples) {
  ServeMonitor::Options options;
  options.drift_window = 8;
  options.drift_threshold_pct = 20.0;
  options.drift_min_samples = 5;
  ServeMonitor monitor(options);
  // Wildly wrong from the first sample, but the alarm may not fire until
  // drift_min_samples joins have accumulated.
  for (std::uint64_t i = 1; i <= 8; ++i) {
    monitor.record_prediction(i, 500.0, 1);
    const auto result = monitor.record_feedback(i, 100.0);
    EXPECT_EQ(result.alarm, i >= options.drift_min_samples);
  }
}

TEST(ServeMonitor, JournalEvictsOldestPredictionsFirst) {
  ServeMonitor::Options options;
  options.journal_capacity = 4;
  ServeMonitor monitor(options);
  for (std::uint64_t trace = 1; trace <= 6; ++trace)
    monitor.record_prediction(trace, 100.0, 1);
  EXPECT_EQ(monitor.journal_size(), 4u);
  // Traces 1 and 2 were evicted FIFO; 3..6 still join.
  EXPECT_FALSE(monitor.record_feedback(1, 90.0).matched);
  EXPECT_FALSE(monitor.record_feedback(2, 90.0).matched);
  for (std::uint64_t trace = 3; trace <= 6; ++trace)
    EXPECT_TRUE(monitor.record_feedback(trace, 90.0).matched);
  EXPECT_EQ(monitor.journal_size(), 0u);
  // One feedback per prediction: the second report is unmatched.
  EXPECT_FALSE(monitor.record_feedback(3, 90.0).matched);
}

TEST(ServeMonitor, WindowsAreIsolatedPerModelVersion) {
  ServeMonitor monitor;
  monitor.record_prediction(1, 100.0, /*version=*/1);
  monitor.record_prediction(2, 100.0, /*version=*/2);
  monitor.record_prediction(3, 100.0, /*version=*/2);
  EXPECT_TRUE(monitor.record_feedback(1, 50.0).matched);   // APE 100%.
  EXPECT_TRUE(monitor.record_feedback(2, 100.0).matched);  // APE 0%.
  const auto stats = monitor.version_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats.at(1).predictions, 1u);
  EXPECT_EQ(stats.at(2).predictions, 2u);
  EXPECT_EQ(stats.at(1).mdape_pct, 100.0);
  EXPECT_EQ(stats.at(2).mdape_pct, 0.0);
  EXPECT_EQ(stats.at(2).feedback, 1u);
}

TEST(ServeMonitor, InvalidObservedRatesDoNotConsumeTheJournal) {
  ServeMonitor monitor;
  monitor.record_prediction(7, 100.0, 1);
  EXPECT_FALSE(monitor.record_feedback(7, 0.0).matched);
  EXPECT_FALSE(monitor.record_feedback(7, -5.0).matched);
  // The entry survives bad reports and still joins a valid one.
  EXPECT_TRUE(monitor.record_feedback(7, 90.0).matched);
}

// ------------------------------------------------------------- end to end

struct RunningServer {
  explicit RunningServer(PredictionServer::Options options = {}) {
    host = std::make_unique<ModelHost>(shared_model());
    server = std::make_unique<PredictionServer>(*host, options);
    server->start();
  }
  std::unique_ptr<ModelHost> host;
  std::unique_ptr<PredictionServer> server;
};

TEST(ServeMonitorE2E, FeedbackRepliesMatchOfflineMdapeExactly) {
  PredictionServer::Options options;
  options.monitor.drift_window = 8;
  options.monitor.drift_threshold_pct = 1e9;  // Alarm stays out of frame.
  RunningServer running(options);
  PredictionClient client("127.0.0.1", running.server->port());

  const auto mix = transfer_mix();
  // Observed = predicted * factor: a spread of accuracies, all on exact
  // doubles that round-trip through the %.17g wire format.
  const std::vector<double> factors = {1.0,  0.75, 1.5,  0.9, 2.0,
                                       0.25, 1.1,  0.625, 1.25, 0.5};
  std::vector<double> apes;
  for (std::size_t i = 0; i < factors.size(); ++i) {
    const auto reply = client.predict(mix[i % mix.size()]);
    ASSERT_TRUE(reply.ok);
    ASSERT_FALSE(reply.trace_id.empty());
    EXPECT_GE(reply.server_ms, 0.0);

    const double observed = reply.rate_mbps * factors[i];
    const auto feedback = client.feedback(reply.trace_id, observed);
    ASSERT_TRUE(feedback.ok);
    ASSERT_TRUE(feedback.matched);
    apes.push_back(offline_ape(observed, reply.rate_mbps));
    // The acceptance bar: EXACT agreement with the offline computation,
    // not within-epsilon.
    EXPECT_EQ(feedback.ape_pct, apes.back());
    EXPECT_EQ(feedback.mdape_pct,
              offline_mdape(apes, options.monitor.drift_window));
    EXPECT_EQ(feedback.predicted_mbps, reply.rate_mbps);
    EXPECT_EQ(feedback.model_version, 1u);
  }

  // An unknown trace id is reported unmatched, not an error.
  const auto unmatched = client.feedback("t999999", 100.0);
  EXPECT_TRUE(unmatched.ok);
  EXPECT_FALSE(unmatched.matched);
}

TEST(ServeMonitorE2E, DriftAlarmFiresIffWindowExceedsThreshold) {
  PredictionServer::Options options;
  options.monitor.drift_window = 6;
  options.monitor.drift_threshold_pct = 30.0;
  options.monitor.drift_min_samples = 4;
  RunningServer running(options);
  PredictionClient client("127.0.0.1", running.server->port());

  const auto mix = transfer_mix();
  std::vector<double> apes;
  const auto feed = [&](double factor) {
    const auto reply = client.predict(mix[apes.size() % mix.size()]);
    EXPECT_TRUE(reply.ok);
    const double observed = reply.rate_mbps * factor;
    const auto feedback = client.feedback(reply.trace_id, observed);
    EXPECT_TRUE(feedback.matched);
    apes.push_back(offline_ape(observed, reply.rate_mbps));
    return feedback;
  };

  // Accurate phase: no alarm.
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(feed(1.05).alarm);
  {
    const auto stats = client.stats();
    const auto* drift = stats.find("drift");
    ASSERT_NE(drift, nullptr);
    EXPECT_FALSE(drift->find("alarm")->boolean);
  }

  // Drift phase: observed collapses to half the prediction (APE 100%).
  // The alarm must track the offline windowed MdAPE edge exactly.
  bool alarmed = false;
  for (int i = 0; i < 6; ++i) {
    const auto feedback = feed(0.5);
    const double mdape = offline_mdape(apes, options.monitor.drift_window);
    EXPECT_EQ(feedback.alarm, mdape > options.monitor.drift_threshold_pct);
    alarmed = alarmed || feedback.alarm;
  }
  ASSERT_TRUE(alarmed);
  {
    const auto stats = client.stats();
    const auto* drift = stats.find("drift");
    ASSERT_NE(drift, nullptr);
    EXPECT_TRUE(drift->find("alarm")->boolean);
    EXPECT_GE(drift->find("feedback")->number, 11.0);
    // The per-version block reports the breaching window too.
    const auto* versions = stats.find("versions");
    ASSERT_NE(versions, nullptr);
    const auto* v1 = versions->find("1");
    ASSERT_NE(v1, nullptr);
    EXPECT_TRUE(v1->find("alarm")->boolean);
    EXPECT_GT(v1->find("mdape_pct")->number, 30.0);
  }
  // The registry gauge mirrors the alarm state for scrapers.
  EXPECT_EQ(obs::gauge("serve.drift.alarm").value(), 1.0);

  // Recovery: accurate feedback pushes the window back under threshold.
  for (int i = 0; i < 6; ++i) feed(1.0);
  EXPECT_FALSE(client.stats().find("drift")->find("alarm")->boolean);
  EXPECT_EQ(obs::gauge("serve.drift.alarm").value(), 0.0);
}

TEST(ServeMonitorE2E, StatsReportsCountersHistogramsAndQuantiles) {
  obs::Registry::instance().reset();
  RunningServer running;
  PredictionClient client("127.0.0.1", running.server->port());

  const auto mix = transfer_mix();
  constexpr int kRequests = 60;
  std::vector<double> client_us;
  for (int i = 0; i < kRequests; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto reply = client.predict(mix[i % mix.size()]);
    const auto t1 = std::chrono::steady_clock::now();
    ASSERT_TRUE(reply.ok);
    client_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }

  const auto stats = client.stats(/*registry=*/true);
  EXPECT_TRUE(stats.find("ok")->boolean);
  EXPECT_EQ(stats.find("requests")->number, kRequests);
  EXPECT_EQ(stats.find("version")->number, 1.0);

  // Stage latency quantiles: present, populated, ordered.
  const auto* latency = stats.find("latency_us");
  ASSERT_NE(latency, nullptr);
  const auto* server_stage = latency->find("server");
  ASSERT_NE(server_stage, nullptr);
  EXPECT_EQ(server_stage->find("count")->number, kRequests);
  const double p50 = server_stage->find("p50")->number;
  const double p95 = server_stage->find("p95")->number;
  const double p99 = server_stage->find("p99")->number;
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Server time is a subset of the client round trip, so its p50 cannot
  // exceed the client-side p50 by more than estimator resolution (~4%)
  // plus scheduling noise.
  const double client_p50 = percentile(client_us, 50.0);
  EXPECT_LE(p50, client_p50 * 1.10 + 100.0);
  for (const char* stage : {"queue_wait", "assemble", "predict", "respond"}) {
    const auto* entry = latency->find(stage);
    ASSERT_NE(entry, nullptr) << stage;
    EXPECT_GT(entry->find("count")->number, 0.0) << stage;
  }

  // Batch block: every request went through the batcher.
  const auto* batch = stats.find("batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_GT(batch->find("batches")->number, 0.0);
  EXPECT_EQ(batch->find("rows")->number, kRequests);
  // A synchronous client yields single-row batches; p50 interpolates
  // inside the (0, 1] bucket, so assert populated rather than a value.
  EXPECT_GT(batch->find("size")->find("p50")->number, 0.0);
  EXPECT_EQ(batch->find("size")->find("count")->number,
            batch->find("batches")->number);

  // Per-version request attribution.
  const auto* versions = stats.find("versions");
  ASSERT_NE(versions, nullptr);
  ASSERT_NE(versions->find("1"), nullptr);
  EXPECT_EQ(versions->find("1")->find("predictions")->number, kRequests);

  // registry=true splices the raw metrics registry: counters nonzero,
  // histograms with quantile fields.
  const auto* metrics = stats.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const auto* counters = metrics->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("serve.request.count")->number, kRequests);
  EXPECT_EQ(counters->find("serve.response.ok")->number, kRequests);
  const auto* histograms = metrics->find("histograms");
  ASSERT_NE(histograms, nullptr);
  const auto* server_hist = histograms->find("serve.request.server_us");
  ASSERT_NE(server_hist, nullptr);
  EXPECT_EQ(server_hist->find("count")->number, kRequests);
  ASSERT_NE(server_hist->find("p50"), nullptr);
  ASSERT_NE(server_hist->find("p95"), nullptr);
  ASSERT_NE(server_hist->find("p99"), nullptr);
  // Registry and stats read the same estimator: identical p50.
  EXPECT_EQ(server_hist->find("p50")->number, p50);
}

}  // namespace
}  // namespace xfl::serve
