// Fault injection against the event-driven serve core, driven by a raw
// misbehaving TCP client that the PredictionClient would never be:
// bytes trickled one at a time, frames split across arbitrary write
// boundaries, stalls mid-frame, oversized frames, garbage lines, binary
// noise on a JSON connection, bad binary framing, and half-closed
// sockets. The server's contract for every case: a structured error (or
// a correct answer) and a connection that dies cleanly — never a wedged
// worker, never a crash, never an unbounded buffer. Tier2-serve: run
// under -DXFL_SANITIZE=thread like the other concurrency suites.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/units.hpp"
#include "core/predictor.hpp"
#include "serve/client.hpp"
#include "serve/model_host.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/scenario.hpp"

namespace xfl::serve {
namespace {

std::shared_ptr<const core::TransferPredictor> shared_predictor() {
  static const auto predictor = [] {
    sim::EsnetConfig config;
    config.transfers = 400;
    config.duration_s = 86400.0;
    config.seed = 23;
    const auto log = sim::make_esnet_testbed(config).run().log;
    core::TransferPredictor::Options options;
    options.min_edge_transfers = 50;
    options.gbt.trees = 10;
    auto fitted = std::make_shared<core::TransferPredictor>(options);
    fitted->fit(log);
    return std::shared_ptr<const core::TransferPredictor>(fitted);
  }();
  return predictor;
}

struct RunningServer {
  explicit RunningServer(PredictionServer::Options options = {}) {
    host = std::make_unique<ModelHost>(shared_predictor());
    server = std::make_unique<PredictionServer>(*host, options);
    server->start();
  }
  std::unique_ptr<ModelHost> host;
  std::unique_ptr<PredictionServer> server;
};

/// A raw socket with none of PredictionClient's manners.
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                        sizeof address),
              0);
    const int nodelay = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);
    // Every read is bounded: a wedged server turns into a test failure,
    // not a hung suite.
    timeval timeout{};
    timeout.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  RawClient(const RawClient&) = delete;
  RawClient& operator=(const RawClient&) = delete;

  void send_all(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return;  // Peer reset mid-fault is a valid outcome.
      sent += static_cast<std::size_t>(n);
    }
  }

  void send_byte_at_a_time(std::string_view bytes) {
    for (const char c : bytes) send_all({&c, 1});
  }

  void half_close() { ::shutdown(fd_, SHUT_WR); }

  /// Read one newline-terminated line; empty string on EOF/timeout.
  std::string read_line() {
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return {};
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Read exactly n bytes; shorter result means EOF/timeout.
  std::string read_exact(std::size_t n) {
    while (buffer_.size() < n) {
      char chunk[4096];
      const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
      if (got <= 0) break;
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
    const std::size_t take = std::min(n, buffer_.size());
    std::string out = buffer_.substr(0, take);
    buffer_.erase(0, take);
    return out;
  }

  /// True when the server has closed its end (EOF within the timeout).
  bool reads_eof() {
    for (;;) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n == 0) return true;
      if (n < 0) return false;  // Timeout: connection still open.
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

constexpr const char* kPredictLine =
    "{\"id\":\"1\",\"src\":0,\"dst\":1,\"bytes\":5e10,\"files\":8}\n";

/// The canary: whatever a fault test did, the server must still answer a
/// well-behaved client afterwards.
void expect_server_alive(PredictionServer& server) {
  PredictionClient canary("127.0.0.1", server.port());
  EXPECT_TRUE(canary.ping());
  core::PlannedTransfer planned;
  planned.src = 0;
  planned.dst = 1;
  planned.bytes = 10.0 * kGB;
  planned.files = 4;
  const auto reply = canary.predict(planned);
  EXPECT_TRUE(reply.ok);
  EXPECT_GT(reply.rate_mbps, 0.0);
}

// ------------------------------------------------------------ slow senders

TEST(ServeFaults, ByteAtATimeRequestIsAnswered) {
  RunningServer running;
  RawClient client(running.server->port());
  client.send_byte_at_a_time(kPredictLine);
  const std::string line = client.read_line();
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"id\":\"1\""), std::string::npos) << line;
  expect_server_alive(*running.server);
}

TEST(ServeFaults, BinaryFrameSplitAcrossEveryWriteBoundary) {
  RunningServer running;
  core::PlannedTransfer planned;
  planned.src = 0;
  planned.dst = 1;
  planned.bytes = 2.0 * kGB;
  planned.files = 3;
  const std::string frame = binary_predict_request(7, planned);
  // Split the magic + frame at every boundary, one connection per split,
  // so partial-header and partial-payload states are all exercised.
  std::string wire(kBinaryMagic);
  wire += frame;
  for (std::size_t split = 1; split + 1 < wire.size(); split += 3) {
    RawClient client(running.server->port());
    client.send_all(std::string_view(wire).substr(0, split));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    client.send_all(std::string_view(wire).substr(split));
    const std::string ack = client.read_exact(kBinaryMagic.size());
    ASSERT_EQ(ack, kBinaryMagic) << "split at " << split;
    // One reply frame: u32 length, u8 type, payload.
    const std::string header = client.read_exact(5);
    ASSERT_EQ(header.size(), 5u) << "split at " << split;
    std::uint32_t length = 0;
    std::memcpy(&length, header.data(), 4);
    ASSERT_GE(length, 1u);
    const std::string payload = client.read_exact(length - 1);
    const auto reply = parse_binary_reply(
        static_cast<BinaryType>(static_cast<unsigned char>(header[4])),
        payload);
    EXPECT_TRUE(reply.ok) << "split at " << split;
    EXPECT_EQ(reply.id, 7u);
    EXPECT_GT(reply.rate_mbps, 0.0);
  }
  expect_server_alive(*running.server);
}

// -------------------------------------------------------------- stalls

TEST(ServeFaults, StallMidJsonFrameGetsStructuredTimeout) {
  RunningServer running({.partial_frame_timeout_ms = 150, .monitor = {}});
  RawClient client(running.server->port());
  client.send_all("{\"id\":\"9\",\"src\":0,");  // ... and never finishes.
  const std::string line = client.read_line();
  EXPECT_NE(line.find(kErrFrameTimeout), std::string::npos) << line;
  EXPECT_TRUE(client.reads_eof());
  expect_server_alive(*running.server);
}

TEST(ServeFaults, StallMidBinaryFrameGetsStructuredTimeout) {
  RunningServer running({.partial_frame_timeout_ms = 150, .monitor = {}});
  RawClient client(running.server->port());
  client.send_all(kBinaryMagic);
  ASSERT_EQ(client.read_exact(kBinaryMagic.size()), kBinaryMagic);
  client.send_all(std::string("\x40\x00\x00\x00\x01", 5));  // 64-byte frame...
  client.send_all("only a few bytes of it");                // ...never arrives.
  const std::string header = client.read_exact(5);
  ASSERT_EQ(header.size(), 5u);
  std::uint32_t length = 0;
  std::memcpy(&length, header.data(), 4);
  const auto reply = parse_binary_reply(
      static_cast<BinaryType>(static_cast<unsigned char>(header[4])),
      client.read_exact(length - 1));
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, kErrFrameTimeout);
  EXPECT_TRUE(client.reads_eof());
  expect_server_alive(*running.server);
}

TEST(ServeFaults, IdleConnectionIsNeverTimedOut) {
  RunningServer running({.partial_frame_timeout_ms = 150, .monitor = {}});
  RawClient idle(running.server->port());
  // An idle connection holds no partial frame; a second of silence (many
  // sweep periods past the 150ms budget) must not evict it.
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  idle.send_all(kPredictLine);
  const std::string line = idle.read_line();
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
}

// ---------------------------------------------------------- bad framing

TEST(ServeFaults, OversizedJsonFrameIsRejectedAndClosed) {
  RunningServer running;
  RawClient client(running.server->port());
  const std::string huge(kMaxFrameBytes + 64, 'x');  // No newline anywhere.
  client.send_all(huge);
  const std::string line = client.read_line();
  EXPECT_NE(line.find(kErrBadRequest), std::string::npos) << line;
  EXPECT_TRUE(client.reads_eof());
  expect_server_alive(*running.server);
}

TEST(ServeFaults, GarbageLineGetsErrorAndConnectionSurvives) {
  RunningServer running;
  RawClient client(running.server->port());
  client.send_all("this is not json\n");
  std::string line = client.read_line();
  EXPECT_NE(line.find(kErrBadRequest), std::string::npos) << line;
  // Newline framing resyncs: the same connection still serves.
  client.send_all(kPredictLine);
  line = client.read_line();
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
}

TEST(ServeFaults, BinaryNoiseOnJsonConnectionIsContained) {
  RunningServer running({.partial_frame_timeout_ms = 150, .monitor = {}});
  RawClient client(running.server->port());
  // A binary frame the peer never negotiated for: not the magic, not
  // JSON. Depending on whether the noise happens to contain a newline
  // the server answers bad_request or frame_timeout — either way it is
  // a structured error followed by close or resync, never a wedge.
  std::string noise("\x20\x00\x00\x00\x01", 5);
  noise += std::string(32, '\x7f');
  client.send_all(noise);
  const std::string line = client.read_line();
  const bool structured =
      line.find(kErrBadRequest) != std::string::npos ||
      line.find(kErrFrameTimeout) != std::string::npos;
  EXPECT_TRUE(structured) << line;
  expect_server_alive(*running.server);
}

TEST(ServeFaults, OversizedBinaryFrameIsRejectedAndClosed) {
  RunningServer running;
  RawClient client(running.server->port());
  client.send_all(kBinaryMagic);
  ASSERT_EQ(client.read_exact(kBinaryMagic.size()), kBinaryMagic);
  // Length field far past kMaxFrameBytes: framing cannot recover.
  client.send_all(std::string("\xff\xff\xff\x7f\x01", 5));
  const std::string header = client.read_exact(5);
  ASSERT_EQ(header.size(), 5u);
  std::uint32_t length = 0;
  std::memcpy(&length, header.data(), 4);
  const auto reply = parse_binary_reply(
      static_cast<BinaryType>(static_cast<unsigned char>(header[4])),
      client.read_exact(length - 1));
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, kErrBadRequest);
  EXPECT_TRUE(client.reads_eof());
  expect_server_alive(*running.server);
}

TEST(ServeFaults, UnknownBinaryTypeIsRejectedAndClosed) {
  RunningServer running;
  RawClient client(running.server->port());
  client.send_all(kBinaryMagic);
  ASSERT_EQ(client.read_exact(kBinaryMagic.size()), kBinaryMagic);
  client.send_all(std::string("\x02\x00\x00\x00\x9b\x00", 6));
  const std::string header = client.read_exact(5);
  ASSERT_EQ(header.size(), 5u);
  std::uint32_t length = 0;
  std::memcpy(&length, header.data(), 4);
  const auto reply = parse_binary_reply(
      static_cast<BinaryType>(static_cast<unsigned char>(header[4])),
      client.read_exact(length - 1));
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, kErrBadRequest);
  EXPECT_TRUE(client.reads_eof());
  expect_server_alive(*running.server);
}

// ----------------------------------------------------------- half-close

TEST(ServeFaults, HalfCloseStillReceivesEveryAnswer) {
  RunningServer running;
  RawClient client(running.server->port());
  constexpr int kPipelined = 5;
  for (int i = 0; i < kPipelined; ++i) {
    std::string line = "{\"id\":\"" + std::to_string(i) +
                       "\",\"src\":0,\"dst\":1,\"bytes\":1e10}\n";
    client.send_all(line);
  }
  client.half_close();  // Done asking; still reading.
  int answered = 0;
  for (int i = 0; i < kPipelined; ++i) {
    const std::string line = client.read_line();
    if (line.empty()) break;
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
    ++answered;
  }
  EXPECT_EQ(answered, kPipelined);
  // All answers flushed and the read side closed: the server must now
  // close its end rather than leak the connection.
  EXPECT_TRUE(client.reads_eof());
  expect_server_alive(*running.server);
}

TEST(ServeFaults, AbortiveCloseWithRequestsInFlightIsHarmless) {
  RunningServer running;
  for (int round = 0; round < 8; ++round) {
    RawClient client(running.server->port());
    client.send_all(kPredictLine);
    // Destructor closes the socket immediately: replies hit a dead peer.
  }
  expect_server_alive(*running.server);
}

}  // namespace
}  // namespace xfl::serve
