// End-to-end contracts for the explanation protocol and the
// attribution-shift telemetry:
//   - an "explain" request over live TCP answers with the same rate bits
//     as a plain predict, plus per-feature contributions that match a
//     direct TransferPredictor::explain_rates_mbps call EXACTLY (the
//     %.17g wire is lossless);
//   - top_k truncates to the strongest contributions in the server's
//     ranked order, identically in JSON and binary framing;
//   - the binary kExplain/kExplainOk frames are bit-identical to the
//     JSON path;
//   - when the drift alarm rises, the monitor emits a structured
//     drift.attribution event ranking which features' mean
//     |contribution| moved most between the alarm window and the
//     preceding baseline — with the perturbed feature first;
//   - serve startup logs build info and stats exports uptime_seconds.
// Carries the tier2-explain label; check-explain re-runs it under TSan
// and ASan+UBSan like the other serve suites.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "core/predictor.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/model_host.hpp"
#include "serve/monitor.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/scenario.hpp"

namespace xfl::serve {
namespace {

const logs::LogStore& shared_log() {
  static const logs::LogStore log = [] {
    sim::EsnetConfig config;
    config.transfers = 1200;
    config.duration_s = 2.0 * 86400.0;
    config.seed = 17;
    return sim::make_esnet_testbed(config).run().log;
  }();
  return log;
}

std::shared_ptr<const core::TransferPredictor> shared_model() {
  static const auto predictor = [] {
    core::TransferPredictor::Options options;
    options.min_edge_transfers = 50;
    options.gbt.trees = 40;
    auto p = std::make_shared<core::TransferPredictor>(options);
    p->fit(shared_log());
    return p;
  }();
  return predictor;
}

std::vector<core::PlannedTransfer> transfer_mix() {
  std::vector<core::PlannedTransfer> mix;
  for (int i = 0; i < 12; ++i) {
    core::PlannedTransfer planned;
    planned.src = static_cast<endpoint::EndpointId>(i % 2 == 0 ? 0 : 2);
    planned.dst = static_cast<endpoint::EndpointId>(i % 3 == 0 ? 1 : 3);
    planned.bytes = (1.0 + i) * 5.0 * kGB;
    planned.files = static_cast<std::uint64_t>(1 + i * 3);
    planned.dirs = static_cast<std::uint64_t>(1 + i % 4);
    planned.concurrency = static_cast<std::uint32_t>(1 + i % 8);
    planned.parallelism = static_cast<std::uint32_t>(1 + (i * 5) % 8);
    mix.push_back(planned);
  }
  return mix;
}

struct RunningServer {
  explicit RunningServer(PredictionServer::Options options = {}) {
    host = std::make_unique<ModelHost>(shared_model());
    server = std::make_unique<PredictionServer>(*host, options);
    server->start();
  }
  std::unique_ptr<ModelHost> host;
  std::unique_ptr<PredictionServer> server;
};

/// Captures log output through a tmpfile sink, restoring the default
/// configuration afterwards (the test_obs idiom).
class LogCapture {
 public:
  explicit LogCapture(obs::LogLevel level) {
    file_ = std::tmpfile();
    obs::configure_logging({level, /*json=*/false, file_});
  }
  ~LogCapture() {
    obs::configure_logging({});
    std::fclose(file_);
  }
  std::string text() const {
    std::fflush(file_);
    std::string out;
    std::rewind(file_);
    char buffer[4096];
    std::size_t n;
    while ((n = std::fread(buffer, 1, sizeof buffer, file_)) > 0)
      out.append(buffer, n);
    return out;
  }

 private:
  std::FILE* file_;
};

/// Ground truth for a wire explanation: the same predictor the server
/// snapshots, called directly.
core::RateExplanation direct_explanation(const RunningServer& running,
                                         const core::PlannedTransfer& t) {
  const features::ContentionFeatures load;
  const auto explained = running.host->snapshot().predictor->explain_rates_mbps(
      std::span(&t, 1), std::span(&load, 1));
  return explained.front();
}

// ------------------------------------------------------------ wire paths

TEST(ExplainServeE2E, JsonExplainMatchesDirectComputationExactly) {
  RunningServer running;
  PredictionClient client("127.0.0.1", running.server->port());

  for (const auto& transfer : transfer_mix()) {
    const auto predicted = client.predict(transfer);
    ASSERT_TRUE(predicted.ok);

    const auto reply = client.explain(transfer);
    ASSERT_TRUE(reply.ok);
    ASSERT_FALSE(reply.trace_id.empty());

    // The explained rate is the rate — same bits as the plain predict
    // path for the same inputs.
    EXPECT_EQ(reply.rate_mbps, predicted.rate_mbps);
    EXPECT_EQ(reply.model, predicted.model);

    // Every contribution equals the direct computation bit-for-bit; the
    // %.17g wire format is lossless for doubles.
    const auto direct = direct_explanation(running, transfer);
    EXPECT_EQ(reply.raw_mbps, direct.raw_mbps);
    EXPECT_EQ(reply.bias_mbps, direct.bias_mbps);
    EXPECT_EQ(reply.low_mbps, direct.low_mbps);
    EXPECT_EQ(reply.high_mbps, direct.high_mbps);
    ASSERT_EQ(reply.contributions.size(), direct.feature_names.size());
    std::map<std::string, double> expected;
    for (std::size_t c = 0; c < direct.feature_names.size(); ++c)
      expected[direct.feature_names[c]] = direct.contributions[c];
    double previous = std::numeric_limits<double>::infinity();
    for (const auto& [feature, mbps] : reply.contributions) {
      const auto found = expected.find(feature);
      ASSERT_NE(found, expected.end()) << "unknown feature " << feature;
      EXPECT_EQ(mbps, found->second) << feature;
      expected.erase(found);
      // Ranked order: |contribution| descending on the wire.
      EXPECT_LE(std::abs(mbps), previous) << feature;
      previous = std::abs(mbps);
    }
    EXPECT_TRUE(expected.empty());  // Full reply covers every feature.
  }
}

TEST(ExplainServeE2E, TopKKeepsTheStrongestContributions) {
  RunningServer running;
  PredictionClient client("127.0.0.1", running.server->port());
  const auto transfer = transfer_mix().front();

  const auto full = client.explain(transfer);
  ASSERT_TRUE(full.ok);
  ASSERT_GT(full.contributions.size(), 3u);

  const auto top3 = client.explain(transfer, {}, 0, 3);
  ASSERT_TRUE(top3.ok);
  ASSERT_EQ(top3.contributions.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(top3.contributions[i].first, full.contributions[i].first);
    EXPECT_EQ(top3.contributions[i].second, full.contributions[i].second);
  }
  // Truncation never changes the scalar fields.
  EXPECT_EQ(top3.rate_mbps, full.rate_mbps);
  EXPECT_EQ(top3.raw_mbps, full.raw_mbps);
  EXPECT_EQ(top3.bias_mbps, full.bias_mbps);

  // A top_k beyond the feature count returns everything.
  const auto wide = client.explain(transfer, {}, 0, 999);
  ASSERT_TRUE(wide.ok);
  EXPECT_EQ(wide.contributions.size(), full.contributions.size());
}

TEST(ExplainServeE2E, BinaryExplainBitIdenticalToJson) {
  RunningServer running;
  PredictionClient json_client("127.0.0.1", running.server->port());
  PredictionClient binary_client("127.0.0.1", running.server->port());
  binary_client.negotiate_binary();

  for (const auto& transfer : transfer_mix()) {
    const auto json_reply = json_client.explain(transfer, {}, 0, 5);
    const auto packed_reply = binary_client.explain(transfer, {}, 0, 5);
    ASSERT_TRUE(json_reply.ok);
    ASSERT_TRUE(packed_reply.ok);
    EXPECT_EQ(packed_reply.rate_mbps, json_reply.rate_mbps);
    EXPECT_EQ(packed_reply.raw_mbps, json_reply.raw_mbps);
    EXPECT_EQ(packed_reply.bias_mbps, json_reply.bias_mbps);
    EXPECT_EQ(packed_reply.low_mbps, json_reply.low_mbps);
    EXPECT_EQ(packed_reply.high_mbps, json_reply.high_mbps);
    EXPECT_EQ(packed_reply.model, json_reply.model);
    EXPECT_EQ(packed_reply.contributions, json_reply.contributions);
  }
}

TEST(ExplainServeE2E, MixedPredictAndExplainShareOneBatchQueue) {
  RunningServer running;
  PredictionClient client("127.0.0.1", running.server->port());
  // Interleave predict and explain on one connection: both ride the same
  // batcher and must answer consistently (the partition scatter puts
  // every rate back in its request's slot).
  const auto mix = transfer_mix();
  for (std::size_t i = 0; i < mix.size(); ++i) {
    const auto predicted = client.predict(mix[i]);
    const auto explained = client.explain(mix[i]);
    ASSERT_TRUE(predicted.ok);
    ASSERT_TRUE(explained.ok);
    EXPECT_EQ(explained.rate_mbps, predicted.rate_mbps) << "row " << i;
  }
  EXPECT_GE(obs::counter("serve.batch.explain_rows").value(), mix.size());
}

TEST(ExplainServeE2E, TopKWithoutExplainIsAStructuredError) {
  RunningServer running;
  PredictionClient client("127.0.0.1", running.server->port());
  client.send_line(
      "{\"cmd\":\"predict\",\"id\":\"1\",\"src\":0,\"dst\":1,"
      "\"bytes\":1e9,\"top_k\":3}");
  const auto reply = PredictionClient::parse_reply(client.read_line());
  EXPECT_FALSE(reply.ok);
  EXPECT_FALSE(reply.error.empty());
}

// --------------------------------------------------- attribution shift

TEST(ServeMonitorUnit, AttributionShiftRanksTheMovedFeatureFirst) {
  ServeMonitor::Options options;
  options.drift_window = 4;
  options.drift_threshold_pct = 30.0;
  options.drift_min_samples = 2;
  ServeMonitor monitor(options);

  const std::vector<std::string> names = {"quiet", "mover"};
  const std::uint64_t events_before =
      obs::counter("serve.drift.attribution_events").value();

  LogCapture capture(obs::LogLevel::kDebug);
  std::uint64_t trace = 0;
  const auto feed = [&](double quiet, double mover, double predicted,
                        double observed) {
    monitor.record_prediction(++trace, predicted, 1);
    const std::vector<double> contributions = {quiet, mover};
    monitor.record_attribution(names, contributions);
    return monitor.record_feedback(trace, observed);
  };

  // Baseline: accurate predictions, |contribution| means quiet=5, mover=1.
  for (int i = 0; i < 4; ++i) feed(5.0, 1.0, 100.0, 100.0);
  EXPECT_FALSE(monitor.alarm_active());
  EXPECT_FALSE(monitor.last_shift().valid);

  // Drift: mover's attribution jumps by 20, quiet moves by 1, and the
  // predictions go bad so the alarm rises within the window. The edge
  // fires at the SECOND drifted join — the window is then
  // [0%, 0%, 100%, 100%], median 50% > threshold — so the alarm chunk
  // captured by the shift is [baseline, baseline, drifted, drifted]:
  // mover mean (1 + 1 + 21 + 21) / 4 = 11, quiet (5 + 5 + 6 + 6) / 4 =
  // 5.5, against baseline means 1 and 5.
  for (int i = 0; i < 4; ++i) feed(6.0, 21.0, 200.0, 100.0);
  ASSERT_TRUE(monitor.alarm_active());

  const auto shift = monitor.last_shift();
  ASSERT_TRUE(shift.valid);
  EXPECT_EQ(shift.model_version, 1u);
  EXPECT_EQ(shift.events, 1u);
  ASSERT_EQ(shift.ranked.size(), 2u);
  EXPECT_EQ(shift.ranked[0].feature, "mover");
  EXPECT_EQ(shift.ranked[0].baseline_mean_mbps, 1.0);
  EXPECT_EQ(shift.ranked[0].alarm_mean_mbps, 11.0);
  EXPECT_EQ(shift.ranked[0].delta_mbps, 10.0);
  EXPECT_EQ(shift.ranked[1].feature, "quiet");
  EXPECT_EQ(shift.ranked[1].baseline_mean_mbps, 5.0);
  EXPECT_EQ(shift.ranked[1].alarm_mean_mbps, 5.5);
  EXPECT_EQ(shift.ranked[1].delta_mbps, 0.5);

  EXPECT_EQ(obs::counter("serve.drift.attribution_events").value(),
            events_before + 1);
  const std::string text = capture.text();
  EXPECT_NE(text.find("drift.attribution"), std::string::npos) << text;
  EXPECT_NE(text.find("mover"), std::string::npos) << text;
}

TEST(ExplainServeE2E, DriftAttributionEventNamesThePerturbedFeature) {
  PredictionServer::Options options;
  options.monitor.drift_window = 6;
  options.monitor.drift_threshold_pct = 30.0;
  options.monitor.drift_min_samples = 4;
  RunningServer running(options);
  PredictionClient client("127.0.0.1", running.server->port());

  const std::uint64_t events_before =
      obs::counter("serve.drift.attribution_events").value();

  core::PlannedTransfer steady;
  steady.src = 0;
  steady.dst = 1;
  steady.bytes = 5.0 * kGB;
  steady.files = 8;
  steady.dirs = 2;
  steady.concurrency = 4;
  steady.parallelism = 4;

  const auto feed = [&](const core::PlannedTransfer& transfer,
                        double factor) {
    const auto reply = client.predict(transfer);
    ASSERT_TRUE(reply.ok);
    const auto feedback =
        client.feedback(reply.trace_id, reply.rate_mbps * factor);
    ASSERT_TRUE(feedback.matched);
  };

  LogCapture capture(obs::LogLevel::kDebug);
  // Baseline: the steady workload with accurate feedback.
  for (int i = 0; i < 6; ++i) feed(steady, 1.02);
  EXPECT_FALSE(running.server->monitor().last_shift().valid);

  // Regime change: the transfer size explodes four orders of magnitude
  // and the observed rate collapses. The alarm rises, and the
  // attribution shift must finger `Nb`, the byte-count feature — the
  // input that moved.
  core::PlannedTransfer huge = steady;
  huge.bytes = steady.bytes * 1.0e4;
  for (int i = 0; i < 6; ++i) feed(huge, 0.5);

  const auto shift = running.server->monitor().last_shift();
  ASSERT_TRUE(shift.valid);
  ASSERT_FALSE(shift.ranked.empty());
  EXPECT_EQ(shift.ranked.front().feature, "Nb");
  EXPECT_GT(std::abs(shift.ranked.front().delta_mbps), 0.0);
  EXPECT_EQ(obs::counter("serve.drift.attribution_events").value(),
            events_before + 1);

  // The event is a structured log line naming the top feature...
  const std::string text = capture.text();
  EXPECT_NE(text.find("drift.attribution"), std::string::npos) << text;
  EXPECT_NE(text.find("top_feature"), std::string::npos) << text;

  // ...and the stats admin reply carries the full ranking.
  const auto stats = client.stats();
  const auto* drift = stats.find("drift");
  ASSERT_NE(drift, nullptr);
  const auto* wire_shift = drift->find("attribution_shift");
  ASSERT_NE(wire_shift, nullptr);
  EXPECT_TRUE(wire_shift->find("valid")->boolean);
  EXPECT_GE(wire_shift->find("events_total")->number, 1.0);
  const auto* ranked = wire_shift->find("ranked");
  ASSERT_NE(ranked, nullptr);
  ASSERT_FALSE(ranked->array.empty());
  EXPECT_EQ(ranked->array.front().find("feature")->string, "Nb");
}

// ------------------------------------------------------ startup & stats

TEST(ExplainServeE2E, StartupLogsBuildInfoAndStatsExportUptime) {
  LogCapture capture(obs::LogLevel::kInfo);
  RunningServer running;
  const std::string text = capture.text();
  EXPECT_NE(text.find("prediction server build info"), std::string::npos)
      << text;
  EXPECT_NE(text.find("compiler"), std::string::npos) << text;
  EXPECT_NE(text.find("kernel"), std::string::npos) << text;

  PredictionClient client("127.0.0.1", running.server->port());
  const auto stats = client.stats();
  const auto* uptime = stats.find("uptime_seconds");
  ASSERT_NE(uptime, nullptr);
  EXPECT_GE(uptime->number, 0.0);
  EXPECT_GE(obs::gauge("serve.uptime_seconds").value(), 0.0);
}

}  // namespace
}  // namespace xfl::serve
