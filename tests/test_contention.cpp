#include "features/contention.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace xfl::features {
namespace {

logs::TransferRecord make_record(std::uint64_t id, endpoint::EndpointId src,
                                 endpoint::EndpointId dst, double start,
                                 double end, double bytes,
                                 std::uint32_t c = 4, std::uint32_t p = 2,
                                 std::uint64_t files = 100) {
  logs::TransferRecord r;
  r.id = id;
  r.src = src;
  r.dst = dst;
  r.start_s = start;
  r.end_s = end;
  r.bytes = bytes;
  r.files = files;
  r.dirs = 1;
  r.concurrency = c;
  r.parallelism = p;
  return r;
}

TEST(Contention, LoneTransferHasZeroLoad) {
  logs::LogStore log;
  log.append(make_record(1, 0, 1, 0.0, 10.0, 1000.0));
  const auto features = compute_contention(log);
  ASSERT_EQ(features.size(), 1u);
  EXPECT_DOUBLE_EQ(features[0].k_sout, 0.0);
  EXPECT_DOUBLE_EQ(features[0].k_din, 0.0);
  EXPECT_DOUBLE_EQ(features[0].g_src, 0.0);
  EXPECT_DOUBLE_EQ(features[0].s_dout, 0.0);
}

TEST(Contention, DisjointTransfersDoNotInteract) {
  logs::LogStore log;
  log.append(make_record(1, 0, 1, 0.0, 10.0, 1000.0));
  log.append(make_record(2, 0, 1, 10.0, 20.0, 1000.0));  // Touching, no overlap.
  log.append(make_record(3, 0, 1, 30.0, 40.0, 1000.0));
  for (const auto& f : compute_contention(log)) {
    EXPECT_DOUBLE_EQ(f.k_sout, 0.0);
    EXPECT_DOUBLE_EQ(f.g_src, 0.0);
  }
}

TEST(Contention, FullOverlapSameEdgeExactValues) {
  // Two identical-window transfers on edge 0->1. For each, the other is a
  // source-outgoing and destination-incoming competitor with weight 1.
  logs::LogStore log;
  log.append(make_record(1, 0, 1, 0.0, 10.0, 1000.0, 4, 2, 100));  // 100 B/s
  log.append(make_record(2, 0, 1, 0.0, 10.0, 2000.0, 8, 3, 5));    // 200 B/s
  const auto features = compute_contention(log);

  // Transfer 1 sees transfer 2: rate 200, procs min(8,5)=5, streams 15.
  EXPECT_DOUBLE_EQ(features[0].k_sout, 200.0);
  EXPECT_DOUBLE_EQ(features[0].k_din, 200.0);
  EXPECT_DOUBLE_EQ(features[0].k_sin, 0.0);
  EXPECT_DOUBLE_EQ(features[0].k_dout, 0.0);
  EXPECT_DOUBLE_EQ(features[0].g_src, 5.0);
  EXPECT_DOUBLE_EQ(features[0].g_dst, 5.0);
  EXPECT_DOUBLE_EQ(features[0].s_sout, 15.0);
  EXPECT_DOUBLE_EQ(features[0].s_din, 15.0);

  // Transfer 2 sees transfer 1: rate 100, procs min(4,100)=4, streams 8.
  EXPECT_DOUBLE_EQ(features[1].k_sout, 100.0);
  EXPECT_DOUBLE_EQ(features[1].k_din, 100.0);
  EXPECT_DOUBLE_EQ(features[1].g_src, 4.0);
  EXPECT_DOUBLE_EQ(features[1].s_sout, 8.0);
}

TEST(Contention, PartialOverlapScalesByFraction) {
  // Transfer 1 spans [0, 10]; transfer 2 spans [5, 25] at 50 B/s.
  // Overlap = 5 s. For transfer 1 the weight is 5/10; for transfer 2, 5/20.
  logs::LogStore log;
  log.append(make_record(1, 0, 1, 0.0, 10.0, 1000.0));   // 100 B/s
  log.append(make_record(2, 0, 1, 5.0, 25.0, 1000.0));   // 50 B/s
  const auto features = compute_contention(log);
  EXPECT_DOUBLE_EQ(features[0].k_sout, 0.5 * 50.0);
  EXPECT_DOUBLE_EQ(features[1].k_sout, 0.25 * 100.0);
}

TEST(Contention, OppositeDirectionLandsInKsinAndKdout) {
  // k: 0 -> 1. Competitor: 1 -> 0 (incoming at k's source, outgoing at
  // k's destination).
  logs::LogStore log;
  log.append(make_record(1, 0, 1, 0.0, 10.0, 1000.0));           // k
  log.append(make_record(2, 1, 0, 0.0, 10.0, 3000.0, 2, 4, 10)); // 300 B/s
  const auto features = compute_contention(log);
  EXPECT_DOUBLE_EQ(features[0].k_sin, 300.0);
  EXPECT_DOUBLE_EQ(features[0].k_dout, 300.0);
  EXPECT_DOUBLE_EQ(features[0].k_sout, 0.0);
  EXPECT_DOUBLE_EQ(features[0].k_din, 0.0);
  // G counts both directions (src side and dst side each see procs=2).
  EXPECT_DOUBLE_EQ(features[0].g_src, 2.0);
  EXPECT_DOUBLE_EQ(features[0].g_dst, 2.0);
  EXPECT_DOUBLE_EQ(features[0].s_sin, 8.0);
  EXPECT_DOUBLE_EQ(features[0].s_dout, 8.0);
}

TEST(Contention, UnrelatedEndpointsDoNotContribute) {
  logs::LogStore log;
  log.append(make_record(1, 0, 1, 0.0, 10.0, 1000.0));
  log.append(make_record(2, 2, 3, 0.0, 10.0, 9000.0));
  const auto features = compute_contention(log);
  EXPECT_DOUBLE_EQ(features[0].k_sout, 0.0);
  EXPECT_DOUBLE_EQ(features[0].k_sin, 0.0);
  EXPECT_DOUBLE_EQ(features[0].g_src, 0.0);
  EXPECT_DOUBLE_EQ(features[0].g_dst, 0.0);
}

TEST(Contention, SharedSourceOnly) {
  // k: 0 -> 1. Competitor: 0 -> 2 (shares only the source, outgoing).
  logs::LogStore log;
  log.append(make_record(1, 0, 1, 0.0, 10.0, 1000.0));
  log.append(make_record(2, 0, 2, 0.0, 10.0, 5000.0));  // 500 B/s
  const auto features = compute_contention(log);
  EXPECT_DOUBLE_EQ(features[0].k_sout, 500.0);
  EXPECT_DOUBLE_EQ(features[0].k_din, 0.0);
  EXPECT_DOUBLE_EQ(features[0].g_src, 4.0);
  EXPECT_DOUBLE_EQ(features[0].g_dst, 0.0);
}

TEST(Contention, ThreeWayOverlapSumsContributions) {
  logs::LogStore log;
  log.append(make_record(1, 0, 1, 0.0, 10.0, 1000.0));  // k, 100 B/s
  log.append(make_record(2, 0, 2, 0.0, 10.0, 2000.0));  // 200 B/s out of 0
  log.append(make_record(3, 0, 3, 0.0, 10.0, 3000.0));  // 300 B/s out of 0
  const auto features = compute_contention(log);
  EXPECT_DOUBLE_EQ(features[0].k_sout, 500.0);
  EXPECT_DOUBLE_EQ(features[0].g_src, 8.0);
}

TEST(Contention, RelativeExternalLoadFormula) {
  logs::TransferRecord record = make_record(1, 0, 1, 0.0, 10.0, 1000.0);
  ContentionFeatures features;
  features.k_sout = 300.0;  // R = 100 -> 300/(100+300) = 0.75
  features.k_din = 100.0;   // -> 100/200 = 0.5
  EXPECT_DOUBLE_EQ(relative_external_load(record, features), 0.75);
  features.k_sout = 0.0;
  EXPECT_DOUBLE_EQ(relative_external_load(record, features), 0.5);
  features.k_din = 0.0;
  EXPECT_DOUBLE_EQ(relative_external_load(record, features), 0.0);
}

TEST(Contention, RelativeExternalLoadBelowOne) {
  logs::TransferRecord record = make_record(1, 0, 1, 0.0, 10.0, 1.0);
  ContentionFeatures features;
  features.k_sout = 1.0e12;
  const double load = relative_external_load(record, features);
  EXPECT_GT(load, 0.99);
  EXPECT_LT(load, 1.0);
}

// Property: brute-force O(n^2) reference agrees with the sweep on random
// logs across seeds.
class ContentionRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContentionRandom, MatchesBruteForce) {
  Rng rng(GetParam());
  logs::LogStore log;
  const std::size_t n = 120;
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = static_cast<endpoint::EndpointId>(rng.uniform_int(0, 4));
    auto dst = src;
    while (dst == src)
      dst = static_cast<endpoint::EndpointId>(rng.uniform_int(0, 4));
    const double start = rng.uniform(0.0, 1000.0);
    log.append(make_record(i + 1, src, dst, start,
                           start + rng.uniform(1.0, 100.0),
                           rng.uniform(10.0, 1.0e6),
                           static_cast<std::uint32_t>(rng.uniform_int(1, 16)),
                           static_cast<std::uint32_t>(rng.uniform_int(1, 8)),
                           static_cast<std::uint64_t>(rng.uniform_int(1, 50))));
  }
  const auto fast = compute_contention(log);

  for (std::size_t k = 0; k < n; ++k) {
    const auto& self = log[k];
    ContentionFeatures expected;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == k) continue;
      const auto& other = log[i];
      const double overlap =
          std::max(0.0, std::min(self.end_s, other.end_s) -
                            std::max(self.start_s, other.start_s));
      if (overlap <= 0.0) continue;
      const double w = overlap / self.duration_s();
      const double rate = other.rate_Bps();
      const double procs = other.effective_processes();
      const double streams = other.effective_streams();
      if (other.src == self.src) {
        expected.k_sout += w * rate;
        expected.s_sout += w * streams;
        expected.g_src += w * procs;
      }
      if (other.dst == self.src) {
        expected.k_sin += w * rate;
        expected.s_sin += w * streams;
        expected.g_src += w * procs;
      }
      if (other.src == self.dst) {
        expected.k_dout += w * rate;
        expected.s_dout += w * streams;
        expected.g_dst += w * procs;
      }
      if (other.dst == self.dst) {
        expected.k_din += w * rate;
        expected.s_din += w * streams;
        expected.g_dst += w * procs;
      }
    }
    EXPECT_NEAR(fast[k].k_sout, expected.k_sout, 1e-6) << k;
    EXPECT_NEAR(fast[k].k_sin, expected.k_sin, 1e-6) << k;
    EXPECT_NEAR(fast[k].k_dout, expected.k_dout, 1e-6) << k;
    EXPECT_NEAR(fast[k].k_din, expected.k_din, 1e-6) << k;
    EXPECT_NEAR(fast[k].g_src, expected.g_src, 1e-9) << k;
    EXPECT_NEAR(fast[k].g_dst, expected.g_dst, 1e-9) << k;
    EXPECT_NEAR(fast[k].s_sout, expected.s_sout, 1e-9) << k;
    EXPECT_NEAR(fast[k].s_sin, expected.s_sin, 1e-9) << k;
    EXPECT_NEAR(fast[k].s_dout, expected.s_dout, 1e-9) << k;
    EXPECT_NEAR(fast[k].s_din, expected.s_din, 1e-9) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContentionRandom,
                         ::testing::Values(1ULL, 7ULL, 13ULL, 99ULL, 2024ULL));

}  // namespace
}  // namespace xfl::features
