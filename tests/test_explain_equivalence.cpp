// Equivalence suite for the Saabas explanation kernel: on randomized
// fitted ensembles across depths, the flattened explain path must agree
// bit-for-bit with the reference per-row node walk — predictions,
// per-feature contributions, and bias — serial and pooled, and the
// explain predictions must be bit-identical to predict_batch under every
// kernel the host can run. On top of path equivalence sits the
// reconstruction contract of ml::finalize_attribution: contributions
// summed in ascending feature order plus the bias added last equal the
// prediction EXACTLY (EXPECT_EQ on doubles, never near), including NaN
// feature routing and the catastrophic-cancellation fallback.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ml/gbt.hpp"
#include "ml/gbt_flat.hpp"

namespace xfl::ml {
namespace {

struct Synthetic {
  Matrix x;
  std::vector<double> y;
};

Synthetic make_data(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Synthetic data;
  data.x = Matrix(rows, cols);
  data.y.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    double target = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = rng.uniform(-3.0, 3.0);
      data.x.at(r, c) = v;
      target += (c % 2 == 0 ? 1.0 : -0.5) * v;
    }
    target += std::sin(data.x.at(r, 0)) * 2.0 + rng.normal(0.0, 0.1);
    data.y[r] = target;
  }
  return data;
}

/// The canonical reconstruction: ascending feature order, bias LAST.
/// Must mirror finalize_attribution's validation loop exactly.
double reconstruct(const double* contributions, std::size_t cols,
                   double bias) {
  double sum = 0.0;
  for (std::size_t c = 0; c < cols; ++c) sum += contributions[c];
  return sum + bias;
}

/// Flat explain vs. node-walk reference vs. predict, on one model + x.
void expect_explanations_identical(const GradientBoostedTrees& model,
                                   const Matrix& x) {
  const std::size_t rows = x.rows();
  const std::size_t cols = x.cols();

  // Node-walk reference, row at a time.
  std::vector<double> ref_pred(rows);
  std::vector<double> ref_bias(rows);
  std::vector<double> ref_contrib(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    ref_pred[r] = model.explain_nodewalk(
        x.row(r), std::span(ref_contrib.data() + r * cols, cols),
        ref_bias[r]);

  // Explain predictions must be the predictions — same bits as the
  // serving path under every kernel (predict_batch is itself proven
  // kernel-invariant by test_inference_equivalence).
  std::vector<double> predicted(rows);
  model.predict_batch(x, predicted);
  EXPECT_EQ(ref_pred, predicted);

  // Flat explain, serial.
  std::vector<double> pred(rows), bias(rows), contrib(rows * cols);
  model.explain_batch(x, pred, bias, contrib);
  EXPECT_EQ(pred, ref_pred);
  EXPECT_EQ(bias, ref_bias);
  EXPECT_EQ(contrib, ref_contrib);

  // Flat explain, 2-thread pool (block boundaries on any host) and
  // hardware pool.
  ThreadPool two(2);
  std::vector<double> pred2(rows), bias2(rows), contrib2(rows * cols);
  model.explain_batch(x, pred2, bias2, contrib2, &two);
  EXPECT_EQ(pred2, ref_pred);
  EXPECT_EQ(bias2, ref_bias);
  EXPECT_EQ(contrib2, ref_contrib);

  ThreadPool hardware;
  std::vector<double> predh(rows), biash(rows), contribh(rows * cols);
  model.explain_batch(x, predh, biash, contribh, &hardware);
  EXPECT_EQ(predh, ref_pred);
  EXPECT_EQ(biash, ref_bias);
  EXPECT_EQ(contribh, ref_contrib);

  // The reconstruction contract, exact on every row.
  for (std::size_t r = 0; r < rows; ++r)
    EXPECT_EQ(reconstruct(contrib.data() + r * cols, cols, bias[r]), pred[r])
        << "row " << r;

  // Every forced kernel's predictions must match the explain predictions
  // (explanations never depend on which predict kernel serves).
  const FlatEnsemble& flat = model.flat();
  for (const Kernel kernel :
       {Kernel::kScalar, Kernel::kAvx2, Kernel::kQuantized}) {
    if (flat.effective_kernel(kernel) != kernel) continue;
    std::vector<double> forced(rows);
    flat.predict_batch(x, forced, nullptr, kernel);
    EXPECT_EQ(forced, pred) << "kernel " << kernel_name(kernel);
  }
}

/// Randomized sweep over depth 1..6, same recipe as the inference
/// equivalence suite: fixed seeds, arbitrary models, row counts around
/// the pool/block thresholds (777 >= 256 exercises the pooled split).
class ExplainEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ExplainEquivalence, FlatMatchesNodeWalkBitwise) {
  const int depth = GetParam();
  Rng rng(2000 + static_cast<std::uint64_t>(depth));
  const std::size_t cols = 1 + static_cast<std::size_t>(rng.uniform_int(1, 12));
  const std::size_t train_rows =
      200 + static_cast<std::size_t>(rng.uniform_int(0, 400));

  GbtConfig config;
  config.max_depth = depth;
  config.trees = 10 + static_cast<int>(rng.uniform_int(0, 120));
  config.seed = 6000 + static_cast<std::uint64_t>(depth);
  GradientBoostedTrees model(config);
  const auto train = make_data(train_rows, cols, 199 + depth);
  model.fit(train.x, train.y);

  for (const std::size_t rows : {std::size_t{1}, std::size_t{15},
                                 std::size_t{16}, std::size_t{17},
                                 std::size_t{777}}) {
    const auto query = make_data(rows, cols, 8888 + rows);
    expect_explanations_identical(model, query.x);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, ExplainEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// NaN features route right in every path; attributions must agree on
// rows whose walks take the NaN branch.
TEST(ExplainEquivalence, NanFeaturesAttributeIdentically) {
  const auto train = make_data(300, 4, 131);
  GbtConfig config;
  config.trees = 40;
  GradientBoostedTrees model(config);
  model.fit(train.x, train.y);

  auto query = make_data(64, 4, 132);
  Rng rng(133);
  for (std::size_t r = 0; r < query.x.rows(); ++r)
    query.x.at(r, rng.uniform_int(0, 3)) =
        std::numeric_limits<double>::quiet_NaN();
  expect_explanations_identical(model, query.x);
}

// A depth-1 single-tree ensemble is small enough to check the attribution
// semantics by hand: the split feature gets the full scaled expectation
// shift, every other feature gets zero.
TEST(ExplainEquivalence, SingleStumpAttributesOnlyTheSplitFeature) {
  FlatEnsemble::Builder builder(0.5, 1.0);
  builder.begin_tree();
  builder.add_node(1, 0.0, 1, 2);   // Split on feature 1 at 0.
  builder.add_node(-1, -4.0, 0, 0); // Left leaf.
  builder.add_node(-1, 8.0, 0, 0);  // Right leaf.
  const FlatEnsemble flat = std::move(builder).build();

  Matrix x(2, 3);
  x.at(0, 0) = 9.0; x.at(0, 1) = -1.0; x.at(0, 2) = 9.0;  // Goes left.
  x.at(1, 0) = 9.0; x.at(1, 1) = 1.0;  x.at(1, 2) = 9.0;  // Goes right.
  std::vector<double> pred(2), bias(2), contrib(6);
  flat.explain_batch(x, pred, bias, contrib);

  // E[root] = (-4 + 8) / 2 = 2; attr(left) = 1 * (-4 - 2) = -6,
  // attr(right) = 1 * (8 - 2) = 6. Prediction = 0.5 + 1 * leaf.
  EXPECT_EQ(pred[0], 0.5 + -4.0);
  EXPECT_EQ(pred[1], 0.5 + 8.0);
  EXPECT_EQ(contrib[0 * 3 + 0], 0.0);
  EXPECT_EQ(contrib[0 * 3 + 1], -6.0);
  EXPECT_EQ(contrib[0 * 3 + 2], 0.0);
  EXPECT_EQ(contrib[1 * 3 + 1], 6.0);
  // Bias absorbs base + E[root]: 0.5 + 2 = 2.5 on both rows.
  EXPECT_EQ(bias[0], 2.5);
  EXPECT_EQ(bias[1], 2.5);
}

// finalize_attribution's two regimes: the ulp-stepping fix-up lands the
// reconstruction exactly on ordinary inputs, and the catastrophic-
// cancellation fallback (prediction unreachable on the reconstruction
// grid) zeroes the contributions and folds everything into the bias —
// the contract holds either way.
TEST(ExplainEquivalence, FinalizeAttributionAlwaysReconstructs) {
  Rng rng(777);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 19));
    std::vector<double> contributions(n);
    for (auto& c : contributions) c = rng.uniform(-50.0, 50.0);
    const double prediction = rng.uniform(-100.0, 100.0);
    std::vector<double> fixed = contributions;
    const double bias = finalize_attribution(prediction, fixed.data(), n);
    EXPECT_EQ(reconstruct(fixed.data(), n, bias), prediction)
        << "trial " << trial;
  }

  // Cancellation: with a 1e16 contribution the reconstruction grid
  // fl(1e16 + bias) has spacing 2, so prediction 1.0 is unreachable by
  // stepping the bias — the fallback must zero the contribution and
  // make the bias the prediction itself, reconstructing exactly.
  std::vector<double> extreme = {1.0e16};
  const double target = 1.0;
  const double bias =
      finalize_attribution(target, extreme.data(), extreme.size());
  EXPECT_EQ(extreme[0], 0.0);
  EXPECT_EQ(bias, target);
  EXPECT_EQ(reconstruct(extreme.data(), extreme.size(), bias), target);
}

}  // namespace
}  // namespace xfl::ml
