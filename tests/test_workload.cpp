#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace xfl::sim {
namespace {

std::vector<EdgeProfile> two_edges() {
  EdgeProfile a;
  a.src = 0;
  a.dst = 1;
  a.weight = 3.0;
  EdgeProfile b;
  b.src = 2;
  b.dst = 3;
  b.weight = 1.0;
  return {a, b};
}

TEST(Workload, GeneratesTimeOrderedRequests) {
  Rng rng(1);
  WorkloadConfig config;
  config.duration_s = 86400.0;
  config.arrivals_per_s = 0.01;
  const auto requests = generate_workload(two_edges(), config, rng);
  ASSERT_GT(requests.size(), 100u);
  for (std::size_t i = 1; i < requests.size(); ++i)
    EXPECT_GE(requests[i].submit_s, requests[i - 1].submit_s);
}

TEST(Workload, AllRequestsValid) {
  Rng rng(2);
  WorkloadConfig config;
  config.duration_s = 86400.0;
  config.arrivals_per_s = 0.01;
  for (const auto& req : generate_workload(two_edges(), config, rng)) {
    EXPECT_TRUE(req.valid());
    EXPECT_GE(req.bytes, config.min_bytes);
    EXPECT_LE(req.bytes, config.max_bytes);
    EXPECT_GE(req.files, 1u);
    EXPECT_GE(req.dirs, 1u);
  }
}

TEST(Workload, IdsUniqueAndStartAtFirstId) {
  Rng rng(3);
  WorkloadConfig config;
  config.duration_s = 20000.0;
  config.arrivals_per_s = 0.01;
  config.first_id = 1000;
  const auto requests = generate_workload(two_edges(), config, rng);
  std::map<std::uint64_t, int> seen;
  std::uint64_t min_id = ~0ULL;
  for (const auto& req : requests) {
    seen[req.id]++;
    min_id = std::min(min_id, req.id);
  }
  EXPECT_EQ(min_id, 1000u);
  for (const auto& [id, count] : seen) EXPECT_EQ(count, 1) << id;
}

TEST(Workload, EdgeWeightsRespected) {
  Rng rng(4);
  WorkloadConfig config;
  config.duration_s = 400000.0;
  config.arrivals_per_s = 0.02;
  std::size_t heavy = 0, light = 0;
  for (const auto& req : generate_workload(two_edges(), config, rng)) {
    if (req.src == 0) ++heavy;
    if (req.src == 2) ++light;
  }
  // Weight 3:1 -> roughly 75/25 split (sessions add clumping noise).
  const double share =
      static_cast<double>(heavy) / static_cast<double>(heavy + light);
  EXPECT_NEAR(share, 0.75, 0.08);
}

TEST(Workload, SubmissionsWithinWindowPlusSessions) {
  Rng rng(5);
  WorkloadConfig config;
  config.duration_s = 10000.0;
  config.arrivals_per_s = 0.02;
  config.session_gap_s = 30.0;
  for (const auto& req : generate_workload(two_edges(), config, rng)) {
    // Session members can spill a little past the window but not far.
    EXPECT_LT(req.submit_s, config.duration_s + 100.0 * config.session_gap_s);
  }
}

TEST(Workload, TunablesMostlyEdgeDefaults) {
  Rng rng(6);
  auto edges = two_edges();
  edges[0].default_concurrency = 8;
  edges[0].default_parallelism = 2;
  edges[0].tunable_deviation_prob = 0.02;
  WorkloadConfig config;
  config.duration_s = 400000.0;
  config.arrivals_per_s = 0.02;
  std::size_t on_default = 0, total = 0;
  for (const auto& req : generate_workload(edges, config, rng)) {
    if (req.src != 0) continue;
    ++total;
    if (req.params.concurrency == 8 && req.params.parallelism == 2)
      ++on_default;
  }
  ASSERT_GT(total, 500u);
  EXPECT_GT(static_cast<double>(on_default) / static_cast<double>(total), 0.9);
}

TEST(Workload, FileCountConsistentWithSizes) {
  Rng rng(7);
  WorkloadConfig config;
  config.duration_s = 100000.0;
  config.arrivals_per_s = 0.02;
  for (const auto& req : generate_workload(two_edges(), config, rng)) {
    // files ~ bytes / mean_file with mean_file <= bytes, so
    // bytes / files should never exceed bytes.
    EXPECT_LE(req.bytes / static_cast<double>(req.files), req.bytes + 1.0);
  }
}

TEST(Workload, DeterministicGivenSeed) {
  WorkloadConfig config;
  config.duration_s = 50000.0;
  config.arrivals_per_s = 0.02;
  Rng rng1(42), rng2(42);
  const auto a = generate_workload(two_edges(), config, rng1);
  const auto b = generate_workload(two_edges(), config, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].submit_s, b[i].submit_s);
    EXPECT_DOUBLE_EQ(a[i].bytes, b[i].bytes);
    EXPECT_EQ(a[i].files, b[i].files);
  }
}

TEST(Workload, ContractChecks) {
  Rng rng(8);
  WorkloadConfig config;
  EXPECT_THROW(generate_workload({}, config, rng), xfl::ContractViolation);
  auto zero_weight = two_edges();
  zero_weight[0].weight = 0.0;
  zero_weight[1].weight = 0.0;
  EXPECT_THROW(generate_workload(zero_weight, config, rng),
               xfl::ContractViolation);
}


TEST(TemperOfferedLoad, ScalesOverloadedEdgesOnly) {
  endpoint::EndpointCatalog endpoints;
  endpoints.add(endpoint::make_dtn("big", 0));       // ~1.16 GB/s read
  endpoints.add(endpoint::make_dtn("big2", 0));
  endpoints.add(endpoint::make_personal("tiny", 0)); // ~62 MB/s write

  WorkloadConfig config;
  config.duration_s = 1.0e5;
  config.arrivals_per_s = 0.01;
  config.session_mean_transfers = 1.0;  // 1000 transfers expected.

  std::vector<EdgeProfile> profiles(2);
  // Edge 0: big -> big2, modest sizes (mean ~1 GB): ~10 MB/s offered. OK.
  profiles[0].src = 0;
  profiles[0].dst = 1;
  profiles[0].weight = 1.0;
  profiles[0].log_mean_bytes = std::log(1.0e9);
  profiles[0].log_sigma_bytes = 0.0;
  // Edge 1: big -> tiny, huge sizes (mean ~100 GB): ~500 MB/s offered into
  // a 62 MB/s endpoint. Must be tempered hard.
  profiles[1].src = 0;
  profiles[1].dst = 2;
  profiles[1].weight = 1.0;
  profiles[1].log_mean_bytes = std::log(1.0e11);
  profiles[1].log_sigma_bytes = 0.0;

  const double before0 = profiles[0].log_mean_bytes;
  const double before1 = profiles[1].log_mean_bytes;
  const auto tempered = temper_offered_load(profiles, endpoints, config, 0.45);
  EXPECT_EQ(tempered, 1u);
  EXPECT_DOUBLE_EQ(profiles[0].log_mean_bytes, before0);
  EXPECT_LT(profiles[1].log_mean_bytes, before1);

  // Post-temper offered load into the tiny endpoint respects the budget.
  const double mean_bytes = std::exp(profiles[1].log_mean_bytes);
  const double offered = 0.5 * 1000.0 * mean_bytes / config.duration_s;
  const double budget = 0.45 * std::min(endpoints[2].disk.write_Bps,
                                        endpoints[2].nic_in_Bps);
  EXPECT_LE(offered, budget * 1.01);
}

TEST(TemperOfferedLoad, NoChangeWhenUnderBudget) {
  endpoint::EndpointCatalog endpoints;
  endpoints.add(endpoint::make_dtn("a", 0));
  endpoints.add(endpoint::make_dtn("b", 0));
  WorkloadConfig config;
  config.duration_s = 1.0e6;
  config.arrivals_per_s = 0.001;
  std::vector<EdgeProfile> profiles(1);
  profiles[0].src = 0;
  profiles[0].dst = 1;
  profiles[0].log_mean_bytes = std::log(1.0e9);
  profiles[0].log_sigma_bytes = 0.5;
  EXPECT_EQ(temper_offered_load(profiles, endpoints, config), 0u);
}

TEST(TemperOfferedLoad, SharedEndpointAggregatesAcrossEdges) {
  // Two edges each individually under budget but jointly oversubscribing
  // the shared destination: both must be tempered.
  endpoint::EndpointCatalog endpoints;
  endpoints.add(endpoint::make_dtn("s1", 0));
  endpoints.add(endpoint::make_dtn("s2", 0));
  endpoints.add(endpoint::make_personal("shared", 0));
  WorkloadConfig config;
  config.duration_s = 1.0e5;
  config.arrivals_per_s = 0.01;
  config.session_mean_transfers = 1.0;
  std::vector<EdgeProfile> profiles(2);
  for (std::size_t p = 0; p < 2; ++p) {
    profiles[p].src = static_cast<endpoint::EndpointId>(p);
    profiles[p].dst = 2;
    profiles[p].weight = 1.0;
    profiles[p].log_mean_bytes = std::log(8.0e9);  // Each ~40 MB/s offered.
    profiles[p].log_sigma_bytes = 0.0;
  }
  EXPECT_EQ(temper_offered_load(profiles, endpoints, config, 0.45), 2u);
}

TEST(TemperOfferedLoad, ContractChecks) {
  endpoint::EndpointCatalog endpoints;
  endpoints.add(endpoint::make_dtn("a", 0));
  std::vector<EdgeProfile> profiles;
  WorkloadConfig config;
  EXPECT_THROW(temper_offered_load(profiles, endpoints, config, 0.0),
               xfl::ContractViolation);
  EXPECT_EQ(temper_offered_load(profiles, endpoints, config, 0.5), 0u);
}

}  // namespace
}  // namespace xfl::sim
