// Tests for prediction-time helpers: live-load snapshots and rate
// prediction intervals.
#include <gtest/gtest.h>

#include <sstream>

#include "common/units.hpp"
#include "core/predictor.hpp"
#include "features/snapshot.hpp"
#include "sim/scenario.hpp"

namespace xfl {
namespace {

logs::TransferRecord make_record(std::uint64_t id, endpoint::EndpointId src,
                                 endpoint::EndpointId dst, double start,
                                 double end, double bytes,
                                 std::uint32_t c = 4, std::uint32_t p = 2) {
  logs::TransferRecord r;
  r.id = id;
  r.src = src;
  r.dst = dst;
  r.start_s = start;
  r.end_s = end;
  r.bytes = bytes;
  r.files = 100;
  r.dirs = 1;
  r.concurrency = c;
  r.parallelism = p;
  return r;
}

TEST(Snapshot, EmptyWhenNothingActive) {
  logs::LogStore log;
  log.append(make_record(1, 0, 1, 0.0, 10.0, 1000.0));
  const auto features = features::snapshot_load(log, {0, 1}, 50.0);
  EXPECT_DOUBLE_EQ(features.k_sout, 0.0);
  EXPECT_DOUBLE_EQ(features.k_din, 0.0);
  EXPECT_DOUBLE_EQ(features.g_src, 0.0);
}

TEST(Snapshot, ActiveTransfersContributeFullRate) {
  logs::LogStore log;
  log.append(make_record(1, 0, 1, 0.0, 100.0, 10000.0));  // 100 B/s, active.
  log.append(make_record(2, 2, 0, 0.0, 100.0, 5000.0));   // 50 B/s into src.
  log.append(make_record(3, 1, 3, 0.0, 100.0, 2000.0));   // 20 B/s out of dst.
  const auto features = features::snapshot_load(log, {0, 1}, 50.0);
  EXPECT_DOUBLE_EQ(features.k_sout, 100.0);
  EXPECT_DOUBLE_EQ(features.k_sin, 50.0);
  EXPECT_DOUBLE_EQ(features.k_din, 100.0);
  EXPECT_DOUBLE_EQ(features.k_dout, 20.0);
  EXPECT_DOUBLE_EQ(features.g_src, 8.0);   // Both transfers at endpoint 0.
  EXPECT_DOUBLE_EQ(features.g_dst, 8.0);
  EXPECT_DOUBLE_EQ(features.s_sout, 8.0);  // min(4,100)*2 streams.
}

TEST(Snapshot, BoundarySemantics) {
  // Active on [start, end): inclusive at start, exclusive at end.
  logs::LogStore log;
  log.append(make_record(1, 0, 1, 10.0, 20.0, 1000.0));
  EXPECT_GT(features::snapshot_load(log, {0, 1}, 10.0).k_sout, 0.0);
  EXPECT_DOUBLE_EQ(features::snapshot_load(log, {0, 1}, 20.0).k_sout, 0.0);
  EXPECT_DOUBLE_EQ(features::snapshot_load(log, {0, 1}, 9.99).k_sout, 0.0);
}

TEST(Snapshot, ActiveTransferCount) {
  logs::LogStore log;
  log.append(make_record(1, 0, 1, 0.0, 100.0, 1.0));
  log.append(make_record(2, 0, 2, 50.0, 150.0, 1.0));
  log.append(make_record(3, 3, 0, 120.0, 130.0, 1.0));
  EXPECT_EQ(features::active_transfers_at(log, 0, 75.0), 2u);
  EXPECT_EQ(features::active_transfers_at(log, 0, 125.0), 2u);
  EXPECT_EQ(features::active_transfers_at(log, 0, 200.0), 0u);
  EXPECT_EQ(features::active_transfers_at(log, 7, 75.0), 0u);
}

class IntervalFixture : public ::testing::Test {
 protected:
  static const logs::LogStore& shared_log() {
    static const logs::LogStore log = [] {
      sim::EsnetConfig config;
      config.transfers = 1200;
      config.duration_s = 2.0 * 86400.0;
      config.seed = 31;
      return sim::make_esnet_testbed(config).run().log;
    }();
    return log;
  }

  static core::TransferPredictor trained() {
    core::TransferPredictor::Options options;
    options.min_edge_transfers = 50;
    options.gbt.trees = 80;
    core::TransferPredictor predictor(options);
    predictor.fit(shared_log());
    return predictor;
  }
};

TEST_F(IntervalFixture, IntervalBracketsPointEstimate) {
  const auto predictor = trained();
  core::PlannedTransfer planned;
  planned.src = 0;
  planned.dst = 1;
  planned.bytes = 20.0 * kGB;
  planned.files = 20;
  const auto interval = predictor.predict_rate_interval(planned);
  EXPECT_GT(interval.low_mbps, 0.0);
  EXPECT_LE(interval.low_mbps, interval.expected_mbps);
  EXPECT_GE(interval.high_mbps, interval.expected_mbps);
  EXPECT_DOUBLE_EQ(interval.expected_mbps,
                   predictor.predict_rate_mbps(planned));
}

TEST_F(IntervalFixture, IntervalHasNonTrivialWidth) {
  // Transfer rates in the testbed log vary with load, so the calibrated
  // band must not collapse to a point.
  const auto predictor = trained();
  core::PlannedTransfer planned;
  planned.src = 0;
  planned.dst = 1;
  planned.bytes = 20.0 * kGB;
  planned.files = 20;
  const auto interval = predictor.predict_rate_interval(planned);
  EXPECT_LT(interval.low_mbps, 0.99 * interval.high_mbps);
}

TEST_F(IntervalFixture, IntervalSurvivesSaveLoad) {
  const auto predictor = trained();
  std::stringstream buffer;
  predictor.save(buffer);
  const auto loaded = core::TransferPredictor::load(buffer);
  core::PlannedTransfer planned;
  planned.src = 0;
  planned.dst = 1;
  planned.bytes = 20.0 * kGB;
  planned.files = 20;
  const auto a = predictor.predict_rate_interval(planned);
  const auto b = loaded.predict_rate_interval(planned);
  EXPECT_DOUBLE_EQ(a.low_mbps, b.low_mbps);
  EXPECT_DOUBLE_EQ(a.expected_mbps, b.expected_mbps);
  EXPECT_DOUBLE_EQ(a.high_mbps, b.high_mbps);
}

TEST_F(IntervalFixture, SnapshotFeedsPredictorEndToEnd) {
  // The full prediction-time loop: snapshot the load from the log at some
  // instant, feed it to the predictor, get a finite degraded estimate.
  const auto& log = shared_log();
  const auto predictor = trained();
  // Pick a busy instant: the start of the 100th transfer.
  const double now = log[100].start_s;
  const logs::EdgeKey edge{0, 1};
  const auto load = features::snapshot_load(log, edge, now);
  core::PlannedTransfer planned;
  planned.src = edge.src;
  planned.dst = edge.dst;
  planned.bytes = 20.0 * kGB;
  planned.files = 20;
  const double with_load = predictor.predict_rate_mbps(planned, load);
  EXPECT_GT(with_load, 0.0);
  EXPECT_LT(with_load, 2000.0);
}

}  // namespace
}  // namespace xfl
