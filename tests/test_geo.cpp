#include "common/geo.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace xfl {
namespace {

TEST(Geo, ZeroDistanceForSamePoint) {
  const GeoPoint p{41.7, -87.9};
  EXPECT_DOUBLE_EQ(great_circle_km(p, p), 0.0);
}

TEST(Geo, Symmetric) {
  const GeoPoint a{41.708, -87.983};  // ANL
  const GeoPoint b{46.234, 6.053};    // CERN
  EXPECT_DOUBLE_EQ(great_circle_km(a, b), great_circle_km(b, a));
}

TEST(Geo, KnownDistanceChicagoGeneva) {
  // ANL (Chicago area) to CERN (Geneva) is ~7,000 km great circle.
  const GeoPoint anl{41.708, -87.983};
  const GeoPoint cern{46.234, 6.053};
  const double km = great_circle_km(anl, cern);
  EXPECT_GT(km, 6500.0);
  EXPECT_LT(km, 7500.0);
}

TEST(Geo, KnownDistanceArgonneBerkeley) {
  // ANL to LBL is ~3,000 km.
  const GeoPoint anl{41.708, -87.983};
  const GeoPoint lbl{37.876, -122.251};
  const double km = great_circle_km(anl, lbl);
  EXPECT_GT(km, 2700.0);
  EXPECT_LT(km, 3300.0);
}

TEST(Geo, AntipodalIsHalfCircumference) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 180.0};
  EXPECT_NEAR(great_circle_km(a, b), 3.14159265 * 6371.0, 30.0);
}

TEST(Geo, RejectsOutOfRangeCoordinates) {
  const GeoPoint good{0.0, 0.0};
  EXPECT_THROW(great_circle_km({95.0, 0.0}, good), ContractViolation);
  EXPECT_THROW(great_circle_km(good, {0.0, 200.0}), ContractViolation);
}

TEST(Geo, RttLowerBoundIncreasesWithDistance) {
  EXPECT_LT(rtt_lower_bound_s(100.0), rtt_lower_bound_s(5000.0));
}

TEST(Geo, RttHasFloorForZeroDistance) {
  EXPECT_GT(rtt_lower_bound_s(0.0), 0.0);
}

TEST(Geo, RttTransatlanticPlausible) {
  // ~7,000 km -> RTT around 100 ms with path stretch.
  const double rtt = rtt_lower_bound_s(7000.0);
  EXPECT_GT(rtt, 0.07);
  EXPECT_LT(rtt, 0.16);
}

TEST(Geo, RttRejectsNegativeDistance) {
  EXPECT_THROW(rtt_lower_bound_s(-1.0), ContractViolation);
}

// Triangle inequality over a grid of points.
class GeoTriangle
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GeoTriangle, TriangleInequality) {
  const auto [lat, lon] = GetParam();
  const GeoPoint a{lat, lon};
  const GeoPoint b{10.0, 20.0};
  const GeoPoint c{-30.0, 100.0};
  EXPECT_LE(great_circle_km(a, c),
            great_circle_km(a, b) + great_circle_km(b, c) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeoTriangle,
    ::testing::Combine(::testing::Values(-60.0, 0.0, 45.0, 89.0),
                       ::testing::Values(-170.0, -45.0, 0.0, 120.0)));

}  // namespace
}  // namespace xfl
