#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "ml/correlation.hpp"
#include "ml/mic.hpp"

namespace xfl::ml {
namespace {

std::vector<double> linspace(std::size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = lo + (hi - lo) * static_cast<double>(i) /
                    static_cast<double>(n - 1);
  return v;
}

TEST(Correlation, PearsonMatchesCommonImplementation) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y = {2.0, 1.0, 4.0, 3.0, 5.0};
  EXPECT_NEAR(pearson_correlation(x, y), 0.8, 1e-12);
}

TEST(Correlation, AverageRanksHandleTies) {
  const std::vector<double> v = {10.0, 20.0, 20.0, 30.0};
  const auto ranks = average_ranks(v);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(Correlation, SpearmanPerfectForMonotone) {
  const auto x = linspace(100, 0.0, 10.0);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) y[i] = std::exp(x[i]);  // Monotone.
  EXPECT_NEAR(spearman_correlation(x, y), 1.0, 1e-12);
}

TEST(Correlation, SpearmanNearZeroForIndependent) {
  Rng rng(4);
  std::vector<double> x(5000), y(5000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  EXPECT_NEAR(spearman_correlation(x, y), 0.0, 0.05);
}

TEST(Mic, HighForLinearRelationship) {
  const auto x = linspace(500, 0.0, 1.0);
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = 3.0 * x[i] + 1.0;
  EXPECT_GT(mic(x, y), 0.95);
}

TEST(Mic, HighForNoiselessParabola) {
  // Pearson ~0 for a symmetric parabola, but MIC should be high —
  // exactly the nonlinear-dependence evidence Table 5 relies on.
  const auto x = linspace(500, -1.0, 1.0);
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] * x[i];
  EXPECT_LT(std::fabs(pearson_correlation(x, y)), 0.05);
  EXPECT_GT(mic(x, y), 0.8);
}

TEST(Mic, HighForSinusoid) {
  const auto x = linspace(600, 0.0, 4.0 * 3.14159265);
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::sin(x[i]);
  EXPECT_GT(mic(x, y), 0.6);
}

TEST(Mic, LowForIndependentNoise) {
  Rng rng(5);
  std::vector<double> x(800), y(800);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  EXPECT_LT(mic(x, y), 0.35);
}

TEST(Mic, ZeroForConstantInput) {
  // The paper's Table 5 reports 0.00 MIC for the constant C and P columns.
  const std::vector<double> constant(100, 4.0);
  const auto y = linspace(100, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(mic(constant, y), 0.0);
  EXPECT_DOUBLE_EQ(mic(y, constant), 0.0);
}

TEST(Mic, TinySamplesReturnZero) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mic(x, x), 0.0);
}

TEST(Mic, SymmetricInArguments) {
  Rng rng(6);
  std::vector<double> x(300), y(300);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform();
    y[i] = x[i] * x[i] + rng.normal(0.0, 0.05);
  }
  EXPECT_NEAR(mic(x, y), mic(y, x), 1e-12);
}

TEST(Mic, BoundedByOne) {
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> x(200), y(200);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = rng.normal();
      y[i] = 0.5 * x[i] + rng.normal(0.0, 0.3);
    }
    const double value = mic(x, y);
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
  }
}

TEST(Mic, NoisyRelationshipBetweenExtremes) {
  Rng rng(8);
  std::vector<double> x(600), y(600);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform(0.0, 1.0);
    y[i] = x[i] + rng.normal(0.0, 0.3);  // Strong but noisy.
  }
  const double noisy = mic(x, y);
  EXPECT_GT(noisy, 0.15);
  EXPECT_LT(noisy, 0.9);
}

TEST(Mic, DownsamplingKeepsSignal) {
  // 50k-point deterministic curve with a small sample budget.
  const auto x = linspace(50000, 0.0, 1.0);
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::sqrt(x[i]);
  MicOptions options;
  options.max_samples = 500;
  EXPECT_GT(mic(x, y, options), 0.9);
}

TEST(Mic, ContractChecks) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0};
  EXPECT_THROW(mic(x, y), xfl::ContractViolation);
  MicOptions bad;
  bad.alpha = 1.5;
  const std::vector<double> z = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_THROW(mic(z, z, bad), xfl::ContractViolation);
}

}  // namespace
}  // namespace xfl::ml
