#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace xfl {
namespace {

std::vector<CsvRow> parse(const std::string& text) {
  std::istringstream in(text);
  return read_csv(in);
}

TEST(Csv, ParsesSimpleRows) {
  const auto rows = parse("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (CsvRow{"1", "2", "3"}));
}

TEST(Csv, HandlesMissingTrailingNewline) {
  const auto rows = parse("a,b\n1,2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"1", "2"}));
}

TEST(Csv, HandlesQuotedCommasAndNewlines) {
  const auto rows = parse("\"a,b\",\"line1\nline2\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "line1\nline2");
}

TEST(Csv, HandlesEscapedQuotes) {
  const auto rows = parse("\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "say \"hi\"");
}

TEST(Csv, ToleratesCrlf) {
  const auto rows = parse("a,b\r\n1,2\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
}

TEST(Csv, EmptyFieldsPreserved) {
  const auto rows = parse("a,,c\n,,\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "", "c"}));
  EXPECT_EQ(rows[1], (CsvRow{"", "", ""}));
}

TEST(Csv, ThrowsOnUnterminatedQuote) {
  EXPECT_THROW(parse("\"oops\n"), std::runtime_error);
}

TEST(Csv, EscapePassesPlainFieldsThrough) {
  EXPECT_EQ(csv_escape("plain"), "plain");
}

TEST(Csv, EscapeQuotesSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, WriterRoundTrips) {
  std::ostringstream out;
  CsvWriter writer(out);
  const CsvRow original = {"plain", "a,b", "say \"hi\"", "two\nlines", ""};
  writer.write_row(original);
  const auto rows = parse(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], original);
}

TEST(Csv, WriterRoundTripsDoublesExactly) {
  std::ostringstream out;
  CsvWriter writer(out);
  const std::vector<double> values = {1.0 / 3.0, 1e-300, 2.5e17, -0.0};
  writer.write_row(values);
  const auto rows = parse(out.str());
  ASSERT_EQ(rows.size(), 1u);
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_DOUBLE_EQ(std::stod(rows[0][i]), values[i]);
}

TEST(Csv, ReadFileThrowsForMissingPath) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/file.csv"),
               std::runtime_error);
}

// --- Fuzz-ish malformed inputs: error (or defined output), never crash ---

TEST(Csv, UnterminatedQuoteVariantsThrow) {
  EXPECT_THROW(parse("\""), std::runtime_error);           // Lone quote.
  EXPECT_THROW(parse("a,b,\"c"), std::runtime_error);      // Open at EOF.
  EXPECT_THROW(parse("\"a\"\"b\n"), std::runtime_error);   // Escaped, then open.
  EXPECT_THROW(parse("a,\"b\nc,d\ne,f"), std::runtime_error);  // Swallows rest.
}

TEST(Csv, RaggedColumnsParsePerRow) {
  // Width validation is the caller's job; the parser reports what it saw.
  const auto rows = parse("a,b,c\n1\nx,y\n");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[1].size(), 1u);
  EXPECT_EQ(rows[2].size(), 2u);
}

TEST(Csv, EmbeddedNulBytesPreserved) {
  const std::string text{"a\0b,c\n", 6};
  const auto rows = parse(text);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 2u);
  EXPECT_EQ(rows[0][0], (std::string{"a\0b", 3}));
  EXPECT_EQ(rows[0][1], "c");
}

TEST(Csv, CrlfInsideQuotesPreserved) {
  // Outside quotes '\r' is eaten (CRLF tolerance); inside quotes it is
  // data and survives verbatim.
  const auto rows = parse("\"line1\r\nline2\",x\r\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\r\nline2");
  EXPECT_EQ(rows[0][1], "x");
}

TEST(Csv, QuoteOpeningMidFieldParsesDeterministically) {
  // Not valid RFC 4180, but must not crash: the quote opens a quoted run
  // that appends to the field in progress.
  const auto rows = parse("a\"b,c\"d,e\n");
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 2u);
  EXPECT_EQ(rows[0][0], "ab,cd");
  EXPECT_EQ(rows[0][1], "e");
}

TEST(Csv, BinaryGarbageDoesNotCrash) {
  std::string garbage;
  for (int i = 0; i < 512; ++i)
    garbage.push_back(static_cast<char>((i * 131 + 17) % 256));
  try {
    const auto rows = parse(garbage);
    for (const auto& row : rows) EXPECT_FALSE(row.empty());
  } catch (const std::runtime_error&) {
    // Unterminated-quote rejection is an acceptable outcome too.
  }
}

}  // namespace
}  // namespace xfl
