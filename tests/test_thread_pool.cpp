#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace xfl {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, SingleThreadWorks) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) {
    sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, MoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<std::size_t> count{0};
  pool.parallel_for(10000, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 10000u);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(50,
                        [](std::size_t i) {
                          if (i == 17) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   4, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> ok{0};
  pool.parallel_for(4, [&](std::size_t) { ok++; });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, SequentialCallsWork) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round)
    pool.parallel_for(100, [&](std::size_t) { total++; });
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, DefaultThreadCountAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, BlocksPartitionTheRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_blocks(hits.size(), [&](std::size_t begin, std::size_t end) {
    ASSERT_LT(begin, end);
    for (std::size_t i = begin; i < end; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, BlocksRespectMinBlock) {
  ThreadPool pool(8);
  std::atomic<int> blocks{0};
  std::atomic<std::size_t> covered{0};
  pool.parallel_for_blocks(
      100,
      [&](std::size_t begin, std::size_t end) {
        blocks++;
        covered += end - begin;
      },
      64);
  // With min_block = 64, 100 indices fit in at most two blocks.
  EXPECT_LE(blocks.load(), 2);
  EXPECT_EQ(covered.load(), 100u);
}

TEST(ThreadPool, BlocksZeroCountIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for_blocks(0, [&](std::size_t, std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, BlocksPropagateTaskException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for_blocks(64,
                                        [](std::size_t begin, std::size_t) {
                                          if (begin == 0)
                                            throw std::runtime_error("boom");
                                        },
                                        8),
               std::runtime_error);
}

}  // namespace
}  // namespace xfl
