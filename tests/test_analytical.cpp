#include "core/analytical.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace xfl::core {
namespace {

TEST(Analytical, RmaxIsMinOfThree) {
  const BoundEstimate estimate{gbit(9.3), gbit(9.4), gbit(7.8)};
  EXPECT_DOUBLE_EQ(estimate.r_max_Bps(), gbit(7.8));
}

TEST(Analytical, BottleneckClassification) {
  EXPECT_EQ((BoundEstimate{1.0, 2.0, 3.0}).bottleneck(), Bottleneck::kDiskRead);
  EXPECT_EQ((BoundEstimate{3.0, 1.0, 2.0}).bottleneck(), Bottleneck::kNetwork);
  EXPECT_EQ((BoundEstimate{3.0, 2.0, 1.0}).bottleneck(), Bottleneck::kDiskWrite);
}

TEST(Analytical, BottleneckTieFavoursDeterministicOrder) {
  // Ties pick disk read first, then disk write, then network.
  EXPECT_EQ((BoundEstimate{1.0, 1.0, 1.0}).bottleneck(), Bottleneck::kDiskRead);
  EXPECT_EQ((BoundEstimate{2.0, 1.0, 1.0}).bottleneck(), Bottleneck::kDiskWrite);
}

TEST(Analytical, ToStringLabels) {
  EXPECT_STREQ(to_string(Bottleneck::kDiskRead), "disk read");
  EXPECT_STREQ(to_string(Bottleneck::kNetwork), "network");
  EXPECT_STREQ(to_string(Bottleneck::kDiskWrite), "disk write");
}

TEST(Analytical, ValidationWindow) {
  const BoundEstimate estimate{100.0, 200.0, 300.0};  // Rmax = 100.
  // §3.2: consistent means observed in [0.8, 1.2] x Rmax.
  EXPECT_TRUE(validate_bound(100.0, estimate).consistent);
  EXPECT_TRUE(validate_bound(80.0, estimate).consistent);
  EXPECT_TRUE(validate_bound(120.0, estimate).consistent);
  EXPECT_FALSE(validate_bound(79.0, estimate).consistent);
  EXPECT_FALSE(validate_bound(121.0, estimate).consistent);
}

TEST(Analytical, ExceedsFlagsBadEstimate) {
  // §3.2 found edges whose Globus rate beat the perfSONAR MMmax because
  // the probe host had a smaller NIC; those are flagged, not "consistent".
  const BoundEstimate estimate{100.0, 50.0, 100.0};
  const auto validation = validate_bound(90.0, estimate);
  EXPECT_TRUE(validation.exceeds);
  EXPECT_FALSE(validation.consistent);
  EXPECT_EQ(validation.bottleneck, Bottleneck::kNetwork);
}

TEST(Analytical, RatioReported) {
  const BoundEstimate estimate{100.0, 200.0, 400.0};
  EXPECT_DOUBLE_EQ(validate_bound(50.0, estimate).ratio, 0.5);
}

TEST(Analytical, ContractChecks) {
  const BoundEstimate zero{0.0, 1.0, 1.0};
  EXPECT_THROW(validate_bound(1.0, zero), xfl::ContractViolation);
  const BoundEstimate ok{1.0, 1.0, 1.0};
  EXPECT_THROW(validate_bound(-1.0, ok), xfl::ContractViolation);
}

}  // namespace
}  // namespace xfl::core
