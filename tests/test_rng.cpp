#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/stats.hpp"

namespace xfl {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(1.0, 0.0), ContractViolation);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  std::vector<double> draws(200000);
  for (auto& d : draws) d = rng.normal();
  EXPECT_NEAR(mean(draws), 0.0, 0.01);
  EXPECT_NEAR(stddev(draws), 1.0, 0.01);
}

TEST(Rng, NormalWithParametersScales) {
  Rng rng(11);
  std::vector<double> draws(100000);
  for (auto& d : draws) d = rng.normal(10.0, 2.5);
  EXPECT_NEAR(mean(draws), 10.0, 0.05);
  EXPECT_NEAR(stddev(draws), 2.5, 0.05);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(13);
  std::vector<double> draws(100000);
  for (auto& d : draws) d = rng.lognormal(3.0, 1.0);
  EXPECT_NEAR(median(draws), std::exp(3.0), std::exp(3.0) * 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(17);
  std::vector<double> draws(100000);
  for (auto& d : draws) d = rng.exponential(0.25);
  EXPECT_NEAR(mean(draws), 4.0, 0.1);
  EXPECT_TRUE(std::all_of(draws.begin(), draws.end(),
                          [](double v) { return v >= 0.0; }));
}

TEST(Rng, PoissonMeanMatchesSmallAndLarge) {
  Rng rng(19);
  for (const double lambda : {0.5, 8.0, 200.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(lambda));
    EXPECT_NEAR(sum / n, lambda, lambda * 0.05 + 0.05) << "lambda=" << lambda;
  }
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  Rng rng(29);
  std::vector<double> draws(100000);
  for (auto& d : draws) d = rng.weibull(1.0, 3.0);
  EXPECT_NEAR(mean(draws), 3.0, 0.1);  // Weibull(k=1, l) has mean l.
}

TEST(Rng, ZipfPrefersLowRanks) {
  Rng rng(31);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 50000; ++i) {
    const auto rank = rng.zipf(10, 1.0);
    ASSERT_GE(rank, 1);
    ASSERT_LE(rank, 10);
    ++counts[static_cast<std::size_t>(rank)];
  }
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
  EXPECT_GT(counts[5], 0);
}

TEST(Rng, BernoulliFrequencyMatches) {
  Rng rng(37);
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(41);
  const auto perm = rng.permutation(100);
  std::vector<bool> seen(100, false);
  for (const auto i : perm) {
    ASSERT_LT(i, 100u);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

// Property sweep: distribution draws stay within documented supports for
// a range of seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, SupportsRespected) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(rng.exponential(2.0), 0.0);
    EXPECT_GE(rng.poisson(3.0), 0);
    EXPECT_GE(rng.weibull(2.0, 1.0), 0.0);
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1234567ULL,
                                           ~0ULL));

}  // namespace
}  // namespace xfl
