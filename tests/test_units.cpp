#include "common/units.hpp"

#include <gtest/gtest.h>

namespace xfl {
namespace {

TEST(Units, RateConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(mbps(100.0), 1.0e8);
  EXPECT_DOUBLE_EQ(to_mbps(mbps(118.3)), 118.3);
  EXPECT_DOUBLE_EQ(gbit(10.0), 1.25e9);
  EXPECT_DOUBLE_EQ(to_gbit(gbit(7.843)), 7.843);
}

TEST(Units, ByteConstantsConsistent) {
  EXPECT_DOUBLE_EQ(kKB * 1000.0, kMB);
  EXPECT_DOUBLE_EQ(kMB * 1000.0, kGB);
  EXPECT_DOUBLE_EQ(kGB * 1000.0, kTB);
  EXPECT_DOUBLE_EQ(kTB * 1000.0, kPB);
}

TEST(Units, FormatBytesScales) {
  EXPECT_EQ(format_bytes(513.0), "513 B");
  EXPECT_EQ(format_bytes(2.053e12), "2.05 TB");
  EXPECT_EQ(format_bytes(1.5e6), "1.50 MB");
}

TEST(Units, FormatRateScales) {
  EXPECT_EQ(format_rate(1.183e8), "118.30 MB/s");
  EXPECT_EQ(format_rate(11.0), "11 B/s");
}

}  // namespace
}  // namespace xfl
