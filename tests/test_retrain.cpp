// Contracts for the closed-loop retrain subsystem (src/retrain):
//   - the training journal round-trips records bit for bit, rotates
//     segments crash-safely, bounds retention, and survives truncation
//     at EVERY byte offset plus arbitrary garbage (fuzz) — torn lines
//     are skipped, never fatal;
//   - the refit worker trains a candidate from journalled ground truth,
//     scores it on a held-out slice, swaps it in only when the windowed
//     MdAPE improves, and REJECTS a candidate that cannot beat the
//     incumbent — the old version keeps serving;
//   - ModelHost snapshots stay atomic under a reload storm (N swapping
//     threads racing M predicting threads);
//   - end to end over TCP: a simulated regime shift flows through the
//     live feedback path, raises the drift alarm, triggers a background
//     refit, passes the validation gate, hot-swaps a new model version,
//     and the new version's windowed MdAPE recovers below threshold.
// The suite carries the tier2-retrain label; check-retrain re-runs it
// under ThreadSanitizer and ASan+UBSan like the serve suites.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/predictor.hpp"
#include "retrain/journal.hpp"
#include "retrain/retrainer.hpp"
#include "serve/client.hpp"
#include "serve/model_host.hpp"
#include "serve/server.hpp"
#include "sim/scenario.hpp"

namespace xfl::retrain {
namespace {

const logs::LogStore& shared_log() {
  static const logs::LogStore log = [] {
    sim::EsnetConfig config;
    config.transfers = 1200;
    config.duration_s = 2.0 * 86400.0;
    config.seed = 17;
    return sim::make_esnet_testbed(config).run().log;
  }();
  return log;
}

std::shared_ptr<const core::TransferPredictor> shared_model() {
  static const auto predictor = [] {
    core::TransferPredictor::Options options;
    options.min_edge_transfers = 50;
    options.gbt.trees = 40;
    auto p = std::make_shared<core::TransferPredictor>(options);
    p->fit(shared_log());
    return p;
  }();
  return predictor;
}

/// Fresh empty journal directory per test.
std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "retrain_" + name + "_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

/// A deterministic non-trivial record (all fields populated, "ugly"
/// doubles so only lossless encoding round-trips).
JournalRecord sample_record(std::uint64_t i) {
  JournalRecord record;
  record.trace_id = 1000 + i;
  record.timestamp_ms = 1700000000000ull + i * 37;
  record.model_version = 1 + i % 3;
  record.transfer.src = static_cast<endpoint::EndpointId>(i % 5);
  record.transfer.dst = static_cast<endpoint::EndpointId>(1 + i % 7);
  record.transfer.bytes = (0.1 + static_cast<double>(i)) * 1e9 / 3.0;
  record.transfer.files = 1 + i * 13;
  record.transfer.dirs = 1 + i % 4;
  record.transfer.concurrency = static_cast<std::uint32_t>(1 + i % 8);
  record.transfer.parallelism = static_cast<std::uint32_t>(1 + i % 6);
  record.load.k_sout = 1.25e8 / (1.0 + static_cast<double>(i));
  record.load.k_sin = 3.0 * static_cast<double>(i);
  record.load.k_dout = 0.1 * static_cast<double>(i * i);
  record.load.k_din = 7.77e6;
  record.load.g_src = 1.5 + static_cast<double>(i % 3);
  record.load.g_dst = 0.25;
  record.load.s_sout = static_cast<double>(i) / 7.0;
  record.load.s_sin = 11.0;
  record.load.s_dout = 0.0;
  record.load.s_din = 2.5;
  record.predicted_mbps = 123.456 + static_cast<double>(i) / 9.0;
  record.observed_mbps = 98.7654321 * (1.0 + static_cast<double>(i % 5));
  return record;
}

void expect_records_equal(const JournalRecord& a, const JournalRecord& b) {
  EXPECT_EQ(a.trace_id, b.trace_id);
  EXPECT_EQ(a.timestamp_ms, b.timestamp_ms);
  EXPECT_EQ(a.model_version, b.model_version);
  EXPECT_EQ(a.transfer.src, b.transfer.src);
  EXPECT_EQ(a.transfer.dst, b.transfer.dst);
  EXPECT_EQ(a.transfer.bytes, b.transfer.bytes);  // Bit-identical.
  EXPECT_EQ(a.transfer.files, b.transfer.files);
  EXPECT_EQ(a.transfer.dirs, b.transfer.dirs);
  EXPECT_EQ(a.transfer.concurrency, b.transfer.concurrency);
  EXPECT_EQ(a.transfer.parallelism, b.transfer.parallelism);
  EXPECT_EQ(a.load.k_sout, b.load.k_sout);
  EXPECT_EQ(a.load.k_sin, b.load.k_sin);
  EXPECT_EQ(a.load.k_dout, b.load.k_dout);
  EXPECT_EQ(a.load.k_din, b.load.k_din);
  EXPECT_EQ(a.load.g_src, b.load.g_src);
  EXPECT_EQ(a.load.g_dst, b.load.g_dst);
  EXPECT_EQ(a.load.s_sout, b.load.s_sout);
  EXPECT_EQ(a.load.s_sin, b.load.s_sin);
  EXPECT_EQ(a.load.s_dout, b.load.s_dout);
  EXPECT_EQ(a.load.s_din, b.load.s_din);
  EXPECT_EQ(a.predicted_mbps, b.predicted_mbps);
  EXPECT_EQ(a.observed_mbps, b.observed_mbps);
}

// -------------------------------------------------------------- journal

TEST(Journal, EncodeDecodeRoundTripsBitForBit) {
  for (std::uint64_t i = 0; i < 20; ++i) {
    const JournalRecord original = sample_record(i);
    const std::string line = encode_record(original);
    const auto decoded = decode_record(line);
    ASSERT_TRUE(decoded.has_value()) << line;
    expect_records_equal(original, *decoded);
    // Trailing newline/CR from file reads must not break decoding.
    EXPECT_TRUE(decode_record(line + "\n").has_value());
    EXPECT_TRUE(decode_record(line + "\r\n").has_value());
  }
}

TEST(Journal, EverySingleByteCorruptionIsDetected) {
  const std::string line = encode_record(sample_record(3));
  for (std::size_t i = 0; i < line.size(); ++i) {
    std::string corrupt = line;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    EXPECT_FALSE(decode_record(corrupt).has_value())
        << "byte " << i << " flip undetected: " << corrupt;
  }
  // Structural damage too: dropped token, extra token, wrong magic.
  EXPECT_FALSE(decode_record("").has_value());
  EXPECT_FALSE(decode_record("xflj1").has_value());
  EXPECT_FALSE(decode_record(line + " extra").has_value());
  EXPECT_FALSE(decode_record(line.substr(0, line.rfind(' '))).has_value());
}

TEST(Journal, AppendLoadRoundTripAndResume) {
  const std::string dir = fresh_dir("roundtrip");
  std::vector<JournalRecord> written;
  {
    TrainingJournal journal({dir});
    for (std::uint64_t i = 0; i < 10; ++i) {
      written.push_back(sample_record(i));
      journal.append(written.back());
    }
    EXPECT_EQ(journal.appended(), 10u);
    journal.flush();
  }
  // A second instance resumes the same directory instead of resetting it.
  {
    TrainingJournal journal({dir});
    for (std::uint64_t i = 10; i < 14; ++i) {
      written.push_back(sample_record(i));
      journal.append(written.back());
    }
  }
  const auto loaded = TrainingJournal::load(dir);
  EXPECT_EQ(loaded.lines_skipped, 0u);
  ASSERT_EQ(loaded.records.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i)
    expect_records_equal(written[i], loaded.records[i]);
}

TEST(Journal, StampsTimestampWhenUnset) {
  const std::string dir = fresh_dir("stamp");
  TrainingJournal journal({dir});
  JournalRecord record = sample_record(0);
  record.timestamp_ms = 0;
  journal.append(record);
  journal.flush();
  const auto loaded = TrainingJournal::load(dir);
  ASSERT_EQ(loaded.records.size(), 1u);
  // Stamped with a plausible wall clock (after 2023, the suite's floor).
  EXPECT_GT(loaded.records[0].timestamp_ms, 1600000000000ull);
}

TEST(Journal, RotatesSegmentsAndBoundsRetention) {
  const std::string dir = fresh_dir("rotate");
  TrainingJournal::Options options;
  options.directory = dir;
  options.max_segment_bytes = 1024;  // A few records per segment.
  options.max_segments = 3;
  TrainingJournal journal(options);

  constexpr std::uint64_t kRecords = 60;
  for (std::uint64_t i = 0; i < kRecords; ++i) journal.append(sample_record(i));
  EXPECT_EQ(journal.appended(), kRecords);
  EXPECT_LE(journal.segment_count(), options.max_segments);

  // On-disk state matches: at most max_segments segment files.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_TRUE(entry.path().filename().string().starts_with("segment-"));
    ++files;
  }
  EXPECT_LE(files, options.max_segments);

  // Retention dropped the OLDEST records; the survivors are a suffix of
  // the append order and decode unchanged.
  const auto loaded = TrainingJournal::load(dir);
  EXPECT_EQ(loaded.lines_skipped, 0u);
  ASSERT_FALSE(loaded.records.empty());
  ASSERT_LT(loaded.records.size(), kRecords);
  const std::uint64_t first = loaded.records.front().trace_id - 1000;
  for (std::size_t i = 0; i < loaded.records.size(); ++i)
    expect_records_equal(sample_record(first + i), loaded.records[i]);
  EXPECT_EQ(loaded.records.back().trace_id, 1000 + kRecords - 1);
}

TEST(Journal, LoadBoundsToNewestMaxRecords) {
  const std::string dir = fresh_dir("bounded");
  TrainingJournal journal({dir});
  for (std::uint64_t i = 0; i < 12; ++i) journal.append(sample_record(i));
  journal.flush();
  const auto loaded = TrainingJournal::load(dir, /*max_records=*/5);
  ASSERT_EQ(loaded.records.size(), 5u);
  // The newest five, still oldest-first.
  for (std::size_t i = 0; i < 5; ++i)
    expect_records_equal(sample_record(7 + i), loaded.records[i]);
}

// ------------------------------------------------------------ journal fuzz

TEST(JournalFuzz, TruncationAtEveryByteOffsetLoadsCleanly) {
  // Build one healthy segment, then replay every possible torn-write
  // prefix of it: the loader must return exactly the fully-written lines
  // and count the torn tail as skipped — never throw, never misdecode.
  std::string segment;
  constexpr std::uint64_t kLines = 6;
  for (std::uint64_t i = 0; i < kLines; ++i)
    segment += encode_record(sample_record(i)) + "\n";

  const std::string dir = fresh_dir("truncate");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/segment-00000001.xflj";
  for (std::size_t cut = 0; cut <= segment.size(); ++cut) {
    {
      std::ofstream out(path, std::ios::trunc | std::ios::binary);
      out.write(segment.data(), static_cast<std::streamsize>(cut));
    }
    const auto loaded = TrainingJournal::load(dir);
    const std::string prefix = segment.substr(0, cut);
    const auto complete = static_cast<std::size_t>(
        std::count(prefix.begin(), prefix.end(), '\n'));
    const bool torn_tail = !prefix.empty() && prefix.back() != '\n';
    // A tail cut exactly at a line's content end (right before its '\n')
    // is a COMPLETE line — checksum-valid, so it must decode; any
    // shorter tear must be skipped, never misdecoded.
    const bool tail_complete =
        torn_tail && cut < segment.size() && segment[cut] == '\n';
    const std::size_t expected = complete + (tail_complete ? 1u : 0u);
    ASSERT_EQ(loaded.records.size(), expected) << "cut at " << cut;
    EXPECT_EQ(loaded.lines_skipped, torn_tail && !tail_complete ? 1u : 0u)
        << "cut at " << cut;
    for (std::size_t i = 0; i < expected; ++i)
      expect_records_equal(sample_record(i), loaded.records[i]);
  }
}

TEST(JournalFuzz, GarbageSegmentsNeverCrashTheLoader) {
  const std::string dir = fresh_dir("garbage");
  std::filesystem::create_directories(dir);
  Rng rng(99);
  // Pure random bytes (including newlines and NULs).
  {
    std::ofstream out(dir + "/segment-00000001.xflj", std::ios::binary);
    for (int i = 0; i < 4096; ++i)
      out.put(static_cast<char>(rng.uniform_int(0, 255)));
  }
  // Random printable lines with journal-ish shapes.
  {
    std::ofstream out(dir + "/segment-00000002.xflj", std::ios::binary);
    out << "xflj1\n" << "xflj1 1 2 3\n" << "xflj9 not a record\n"
        << std::string(3000, 'x') << "\n\n\n";
  }
  const auto loaded = TrainingJournal::load(dir);
  EXPECT_EQ(loaded.records.size(), 0u);
  EXPECT_EQ(loaded.segments_read, 2u);
  EXPECT_GT(loaded.lines_skipped, 0u);
}

TEST(JournalFuzz, ValidLinesSurviveInterleavedGarbage) {
  const std::string dir = fresh_dir("interleaved");
  std::filesystem::create_directories(dir);
  Rng rng(7);
  std::vector<JournalRecord> valid;
  {
    std::ofstream out(dir + "/segment-00000001.xflj", std::ios::binary);
    for (std::uint64_t i = 0; i < 8; ++i) {
      // A burst of garbage before every healthy line.
      std::string noise;
      const int n = static_cast<int>(rng.uniform_int(0, 40));
      for (int b = 0; b < n; ++b) {
        char c = static_cast<char>(rng.uniform_int(32, 126));
        noise.push_back(c);
      }
      out << noise << "\n";
      valid.push_back(sample_record(i));
      out << encode_record(valid.back()) << "\n";
    }
  }
  const auto loaded = TrainingJournal::load(dir);
  ASSERT_EQ(loaded.records.size(), valid.size());
  for (std::size_t i = 0; i < valid.size(); ++i)
    expect_records_equal(valid[i], loaded.records[i]);
}

// ------------------------------------------------------- refit worker

/// Planned-transfer mix on one edge with varied shapes, so a per-edge
/// GBT has real structure to learn.
std::vector<core::PlannedTransfer> edge_mix(endpoint::EndpointId src,
                                            endpoint::EndpointId dst) {
  std::vector<core::PlannedTransfer> mix;
  for (int i = 0; i < 12; ++i) {
    core::PlannedTransfer planned;
    planned.src = src;
    planned.dst = dst;
    planned.bytes = (1.0 + i) * 5.0 * kGB;
    planned.files = static_cast<std::uint64_t>(1 + i * 3);
    planned.dirs = static_cast<std::uint64_t>(1 + i % 4);
    planned.concurrency = static_cast<std::uint32_t>(1 + i % 8);
    planned.parallelism = static_cast<std::uint32_t>(1 + (i * 5) % 8);
    mix.push_back(planned);
  }
  return mix;
}

RetrainOptions fast_retrain_options() {
  RetrainOptions options;
  options.min_edge_records = 40;
  options.min_holdout = 8;
  options.holdout_fraction = 0.25;
  options.min_improvement_pct = 1.0;
  options.gbt.trees = 40;
  options.poll_ms = 20;
  return options;
}

TEST(RetrainWorker, RegimeShiftIsLearnedAndSwappedIn) {
  const std::string dir = fresh_dir("worker_accept");
  TrainingJournal journal({dir});
  serve::ModelHost host(shared_model());
  const auto initial = host.snapshot();

  // Regime shift: the world now delivers 45% of what the incumbent
  // predicts — a deterministic function of the features, so a refit can
  // learn it while the incumbent stays ~122% APE off.
  const auto mix = edge_mix(0, 1);
  for (std::uint64_t i = 0; i < 60; ++i) {
    const auto& planned = mix[i % mix.size()];
    JournalRecord record;
    record.trace_id = i + 1;
    record.model_version = 1;
    record.transfer = planned;
    record.predicted_mbps = initial.predictor->predict_rate_mbps(planned);
    record.observed_mbps = 0.45 * record.predicted_mbps;
    journal.append(record);
  }

  RetrainWorker worker(host, journal, fast_retrain_options());
  const std::size_t swaps = worker.run_cycle(RetrainTrigger::kManual);
  EXPECT_EQ(swaps, 1u);
  EXPECT_EQ(host.version(), 2u);

  const auto status = worker.status();
  EXPECT_EQ(status.cycles, 1u);
  EXPECT_EQ(status.triggers_manual, 1u);
  EXPECT_EQ(status.accepted, 1u);
  EXPECT_EQ(status.rejected, 0u);
  EXPECT_EQ(status.last_decision, "accepted");
  EXPECT_EQ(status.last_edge, "0->1");
  EXPECT_EQ(status.last_version, 2u);
  EXPECT_LE(status.last_candidate_mdape_pct,
            status.last_incumbent_mdape_pct - 1.0);

  // The published model actually predicts the shifted regime.
  const auto swapped = host.snapshot();
  ASSERT_NE(swapped.predictor, initial.predictor);
  double mdape_num = 0.0;
  for (const auto& planned : mix) {
    const double truth = 0.45 * initial.predictor->predict_rate_mbps(planned);
    const double predicted = swapped.predictor->predict_rate_mbps(planned);
    mdape_num += std::abs(predicted - truth) / truth;
  }
  EXPECT_LT(mdape_num / static_cast<double>(mix.size()), 0.25);

  // The JSON status mirrors the struct (spliced into retrain-status).
  const std::string json = worker.status_json();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"accepted\":1"), std::string::npos);
  EXPECT_NE(json.find("\"last_decision\":\"accepted\""), std::string::npos);
}

TEST(RetrainWorker, WorseCandidateIsRejectedAndOldVersionKeepsServing) {
  const std::string dir = fresh_dir("worker_reject");
  TrainingJournal journal({dir});
  serve::ModelHost host(shared_model());
  const auto initial = host.snapshot();

  // Training slice (oldest 75%): pure noise, uncorrelated with features —
  // the candidate can only learn nonsense. Holdout slice (newest 25%):
  // exactly what the incumbent predicts, so the incumbent's holdout
  // MdAPE is 0 and NO candidate can clear the improvement gate.
  const auto mix = edge_mix(0, 1);
  Rng rng(5);
  for (std::uint64_t i = 0; i < 60; ++i) {
    const auto& planned = mix[i % mix.size()];
    JournalRecord record;
    record.trace_id = i + 1;
    record.model_version = 1;
    record.transfer = planned;
    record.predicted_mbps = initial.predictor->predict_rate_mbps(planned);
    record.observed_mbps = i < 45 ? rng.uniform(50.0, 500.0)
                                  : record.predicted_mbps;
    journal.append(record);
  }

  RetrainWorker worker(host, journal, fast_retrain_options());
  const std::size_t swaps = worker.run_cycle(RetrainTrigger::kManual);
  EXPECT_EQ(swaps, 0u);

  // The gate held: no new version, the EXACT same predictor object still
  // serves, and the decision is recorded.
  EXPECT_EQ(host.version(), 1u);
  EXPECT_EQ(host.snapshot().predictor, initial.predictor);
  const auto status = worker.status();
  EXPECT_EQ(status.refits, 1u);
  EXPECT_EQ(status.accepted, 0u);
  EXPECT_EQ(status.rejected, 1u);
  EXPECT_EQ(status.last_decision, "rejected");
  EXPECT_EQ(status.last_incumbent_mdape_pct, 0.0);
}

TEST(RetrainWorker, SkipsEdgesWithTooLittleData) {
  const std::string dir = fresh_dir("worker_skip");
  TrainingJournal journal({dir});
  serve::ModelHost host(shared_model());
  const auto mix = edge_mix(2, 3);
  for (std::uint64_t i = 0; i < 10; ++i) {  // Below min_edge_records.
    JournalRecord record;
    record.trace_id = i + 1;
    record.transfer = mix[i % mix.size()];
    record.predicted_mbps = 100.0;
    record.observed_mbps = 50.0;
    journal.append(record);
  }
  RetrainWorker worker(host, journal, fast_retrain_options());
  EXPECT_EQ(worker.run_cycle(RetrainTrigger::kInterval), 0u);
  EXPECT_EQ(host.version(), 1u);
  const auto status = worker.status();
  EXPECT_EQ(status.skipped, 1u);
  EXPECT_EQ(status.refits, 0u);
  EXPECT_EQ(status.triggers_interval, 1u);
}

TEST(RetrainWorker, AlarmNudgeTriggersABackgroundCycle) {
  const std::string dir = fresh_dir("worker_alarm");
  TrainingJournal journal({dir});
  serve::ModelHost host(shared_model());
  auto options = fast_retrain_options();
  RetrainWorker worker(host, journal, options);
  worker.start();
  EXPECT_TRUE(worker.status().running);
  worker.on_alarm();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (worker.status().triggers_alarm == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  worker.stop();
  const auto status = worker.status();
  EXPECT_GE(status.triggers_alarm, 1u);
  EXPECT_GE(status.cycles, 1u);
  EXPECT_FALSE(status.running);
}

TEST(RetrainWorker, StarvedAlarmCycleRetriesUntilRecordsArrive) {
  // The drift alarm rises after drift_min_samples joins, which can be
  // BEFORE the journal holds min_edge_records — and the alarm is
  // edge-triggered, so it will not fire again while latched. A
  // data-starved alarm cycle must therefore re-arm itself and retry
  // until a cycle reaches a real gate decision, with no further nudges.
  const std::string dir = fresh_dir("worker_retry");
  TrainingJournal journal({dir});
  serve::ModelHost host(shared_model());
  const auto initial = host.snapshot();

  const auto mix = edge_mix(0, 1);
  const auto shifted_record = [&](std::uint64_t i) {
    JournalRecord record;
    record.trace_id = i + 1;
    record.model_version = 1;
    record.transfer = mix[i % mix.size()];
    record.predicted_mbps =
        initial.predictor->predict_rate_mbps(record.transfer);
    record.observed_mbps = 0.45 * record.predicted_mbps;
    return record;
  };
  for (std::uint64_t i = 0; i < 10; ++i) journal.append(shifted_record(i));

  auto options = fast_retrain_options();
  options.poll_ms = 10;
  options.alarm_retry_ms = 50;
  RetrainWorker worker(host, journal, options);
  worker.start();

  // The one and only alarm edge arrives while the journal is starved.
  // Wait on `skipped`, not `cycles`: skipped increments only AFTER the
  // cycle's journal load, so records appended from here on are
  // guaranteed invisible to the first cycle (cycles bumps at cycle
  // start, which under TSan can be long before the load finishes).
  worker.on_alarm();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (worker.status().skipped == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_GE(worker.status().skipped, 1u);
  ASSERT_GE(worker.status().triggers_alarm, 1u);
  EXPECT_EQ(host.version(), 1u);  // Starved: nothing to refit yet.

  // Records keep flowing in; the retry — not a new alarm — must close
  // the loop once the edge clears min_edge_records.
  for (std::uint64_t i = 10; i < 60; ++i) journal.append(shifted_record(i));
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (host.version() < 2 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  worker.stop();

  EXPECT_GE(host.version(), 2u);
  const auto status = worker.status();
  EXPECT_GE(status.triggers_alarm, 2u);  // Original edge + retry cycles.
  EXPECT_GE(status.accepted, 1u);
  EXPECT_EQ(status.last_decision, "accepted");
}

// -------------------------------------------- model host reload storm

TEST(ModelHostStorm, SnapshotsStayAtomicUnderConcurrentReloads) {
  // N swapper threads publish prepared models through swap() while M
  // reader threads snapshot and predict. Atomicity contract: every
  // observed (version, predictor) pair is exactly one that was
  // published — a version never pairs with two different predictors,
  // readers never see versions go backwards, and every snapshot
  // predictor answers (no torn or destroyed model).
  constexpr std::size_t kSwappers = 4;
  constexpr std::size_t kSwapsEach = 12;
  constexpr std::size_t kReaders = 4;

  // Small, cheap-to-clone predictor (global model only, few trees).
  core::TransferPredictor::Options options;
  options.min_edge_transfers = 1 << 20;
  options.gbt.trees = 5;
  auto base = std::make_shared<core::TransferPredictor>(options);
  base->fit(shared_log());

  // Clones built BEFORE the race so swap() is the only hot operation.
  std::vector<std::vector<std::shared_ptr<const core::TransferPredictor>>>
      prepared(kSwappers);
  for (auto& mine : prepared)
    for (std::size_t i = 0; i < kSwapsEach; ++i)
      mine.push_back(
          std::make_shared<const core::TransferPredictor>(base->clone()));

  serve::ModelHost host(base);

  std::mutex published_mutex;
  std::map<std::uint64_t, const core::TransferPredictor*> published;
  published[1] = base.get();

  core::PlannedTransfer planned;
  planned.src = 0;
  planned.dst = 1;
  planned.bytes = 10.0 * kGB;

  std::atomic<bool> stop{false};
  struct Observation {
    std::uint64_t version;
    const core::TransferPredictor* predictor;
  };
  std::vector<std::vector<Observation>> observed(kReaders);

  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r)
    readers.emplace_back([&host, &observed, &stop, &planned, r] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snapshot = host.snapshot();
        // Monotonic versions: a snapshot can never travel back in time.
        ASSERT_GE(snapshot.version, last);
        last = snapshot.version;
        ASSERT_NE(snapshot.predictor, nullptr);
        // The model behind the snapshot must be fully alive.
        ASSERT_GT(snapshot.predictor->predict_rate_mbps(planned), 0.0);
        observed[r].push_back({snapshot.version, snapshot.predictor.get()});
      }
    });

  std::vector<std::thread> swappers;
  for (std::size_t s = 0; s < kSwappers; ++s)
    swappers.emplace_back([&host, &prepared, &published, &published_mutex, s] {
      for (const auto& next : prepared[s]) {
        const core::TransferPredictor* raw = next.get();
        const std::uint64_t version = host.swap(next);
        std::lock_guard lock(published_mutex);
        published[version] = raw;
      }
    });
  for (auto& thread : swappers) thread.join();
  stop.store(true);
  for (auto& thread : readers) thread.join();

  // Every swap got a unique version: initial + kSwappers * kSwapsEach.
  EXPECT_EQ(published.size(), 1 + kSwappers * kSwapsEach);
  EXPECT_EQ(host.version(), 1 + kSwappers * kSwapsEach);

  std::size_t total = 0;
  for (const auto& reader : observed) {
    total += reader.size();
    for (const auto& entry : reader) {
      const auto it = published.find(entry.version);
      ASSERT_NE(it, published.end())
          << "version " << entry.version << " was never published";
      EXPECT_EQ(it->second, entry.predictor)
          << "version " << entry.version
          << " observed with a different predictor than was published";
    }
  }
  EXPECT_GT(total, 0u);
}

// ------------------------------------------------------------ end to end

TEST(RetrainE2E, DriftAlarmTriggersValidatedHotReloadAndMdapeRecovers) {
  // The full loop over real TCP: accurate feedback, then a regime shift
  // (observed collapses to 45% of the ORIGINAL model's prediction,
  // independent of whatever is serving), the drift alarm rises after
  // enough joins — by which point the journal already holds a refittable
  // history — the alarm-triggered background cycle refits, the gate
  // accepts, and the swapped version's windowed MdAPE recovers.
  const std::string dir = fresh_dir("e2e_recover");

  serve::PredictionServer::Options server_options;
  server_options.monitor.drift_window = 64;
  server_options.monitor.drift_threshold_pct = 30.0;
  // The alarm may only rise once a refit is actually possible, so the
  // rising edge IS the trigger that performs the accepted swap.
  server_options.monitor.drift_min_samples = 48;

  serve::ModelHost host(shared_model());
  const auto frozen = host.snapshot().predictor;  // Ground-truth source.
  serve::PredictionServer server(host, server_options);
  RetrainService service(server, {dir}, fast_retrain_options());
  server.start();
  {
    serve::PredictionClient client("127.0.0.1", server.port());

    const auto mix = edge_mix(0, 1);
    // Regime shift through the live feedback path. APE vs the serving v1
    // model is ~122%, so the window breaches as soon as min_samples joins
    // accumulate; every join also lands one journal record.
    bool alarmed = false;
    for (int i = 0; i < 56 && !alarmed; ++i) {
      const auto& planned = mix[static_cast<std::size_t>(i) % mix.size()];
      const auto reply = client.predict(planned);
      ASSERT_TRUE(reply.ok);
      const double observed = 0.45 * frozen->predict_rate_mbps(planned);
      const auto feedback = client.feedback(reply.trace_id, observed);
      ASSERT_TRUE(feedback.matched);
      alarmed = feedback.alarm;
    }
    ASSERT_TRUE(alarmed) << "drift alarm never rose";

    // The alarm nudged the worker; wait for the validated swap.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (host.version() < 2 && std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_GE(host.version(), 2u) << "refit never published a new version";

    // New version serves; its window must recover below threshold under
    // the same shifted ground truth.
    double last_mdape = 1e9;
    std::uint64_t v2_joins = 0;
    for (int i = 0; i < 64 && v2_joins < 16; ++i) {
      const auto& planned = mix[static_cast<std::size_t>(i) % mix.size()];
      const auto reply = client.predict(planned);
      ASSERT_TRUE(reply.ok);
      const double observed = 0.45 * frozen->predict_rate_mbps(planned);
      const auto feedback = client.feedback(reply.trace_id, observed);
      ASSERT_TRUE(feedback.matched);
      if (feedback.model_version >= 2) {
        ++v2_joins;
        last_mdape = feedback.mdape_pct;
        EXPECT_FALSE(feedback.alarm);
      }
    }
    ASSERT_GE(v2_joins, 16u) << "new version never served";
    EXPECT_LT(last_mdape, server_options.monitor.drift_threshold_pct);

    // retrain-status over the wire reports the loop that just closed.
    const auto status = client.retrain_status();
    EXPECT_TRUE(status.find("ok")->boolean);
    const auto* retrain = status.find("retrain");
    ASSERT_NE(retrain, nullptr);
    EXPECT_TRUE(retrain->find("enabled")->boolean);
    EXPECT_GE(retrain->find("triggers_alarm")->number, 1.0);
    EXPECT_GE(retrain->find("accepted")->number, 1.0);
    EXPECT_EQ(retrain->find("last_decision")->string, "accepted");
    // The journal on disk holds the ground truth the refit learned from.
    EXPECT_GT(service.journal().appended(), 48u);
  }
  server.stop();
}

TEST(RetrainE2E, RetrainStatusWithoutServiceReportsDisabled) {
  serve::ModelHost host(shared_model());
  serve::PredictionServer server(host);
  server.start();
  {
    serve::PredictionClient client("127.0.0.1", server.port());
    const auto status = client.retrain_status();
    EXPECT_TRUE(status.find("ok")->boolean);
    const auto* retrain = status.find("retrain");
    ASSERT_NE(retrain, nullptr);
    EXPECT_FALSE(retrain->find("enabled")->boolean);
  }
  server.stop();
}

}  // namespace
}  // namespace xfl::retrain
