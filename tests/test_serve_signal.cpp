// Graceful-drain contract for SIGINT/SIGTERM (satellite of the serve
// telemetry PR): a server with requests already admitted to the batcher
// queue, on receiving SIGTERM, answers every one of them (each either a
// prediction or a structured shutting_down rejection — nothing vanishes),
// closes the listener, and exits 0.
//
// Signal disposition is process-global state; flipping it inside the
// gtest process would race other suites and the harness itself. So this
// suite forks and IMMEDIATELY execs the real `xferlearn serve` binary
// (path injected as XFL_XFERLEARN_BIN at configure time) — fork+exec with
// nothing between them is safe even from a multithreaded test runner.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/predictor.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "sim/scenario.hpp"

namespace xfl::serve {
namespace {

std::string saved_model_path() {
  static const std::string path = [] {
    sim::EsnetConfig config;
    config.transfers = 1200;
    config.duration_s = 2.0 * 86400.0;
    config.seed = 17;
    const auto log = sim::make_esnet_testbed(config).run().log;
    core::TransferPredictor::Options options;
    options.min_edge_transfers = 50;
    options.gbt.trees = 40;
    core::TransferPredictor predictor(options);
    predictor.fit(log);
    const std::string out = testing::TempDir() + "serve_signal_model.txt";
    predictor.save_file(out);
    return out;
  }();
  return path;
}

core::PlannedTransfer planned_transfer(int i) {
  core::PlannedTransfer planned;
  planned.src = static_cast<endpoint::EndpointId>(i % 2 == 0 ? 0 : 2);
  planned.dst = static_cast<endpoint::EndpointId>(i % 3 == 0 ? 1 : 3);
  planned.bytes = (1.0 + i % 12) * 5.0e9;
  planned.files = static_cast<std::uint64_t>(1 + (i % 12) * 3);
  planned.dirs = static_cast<std::uint64_t>(1 + i % 4);
  planned.concurrency = static_cast<std::uint32_t>(1 + i % 8);
  planned.parallelism = static_cast<std::uint32_t>(1 + (i * 5) % 8);
  return planned;
}

/// A `xferlearn serve` child process whose stdout we read through a pipe.
struct ServeProcess {
  pid_t pid = -1;
  std::FILE* out = nullptr;

  ~ServeProcess() {
    if (out != nullptr) std::fclose(out);
    if (pid > 0) {
      kill(pid, SIGKILL);
      int status = 0;
      waitpid(pid, &status, 0);
    }
  }

  void spawn(const std::string& model_path) {
    int fds[2];
    ASSERT_EQ(pipe(fds), 0) << std::strerror(errno);
    pid = fork();
    ASSERT_GE(pid, 0) << std::strerror(errno);
    if (pid == 0) {
      // Child: route stdout through the pipe, then exec immediately —
      // no allocation or locking between fork and exec.
      dup2(fds[1], STDOUT_FILENO);
      close(fds[0]);
      close(fds[1]);
      execl(XFL_XFERLEARN_BIN, "xferlearn", "serve", "--model",
            model_path.c_str(), "--port", "0", static_cast<char*>(nullptr));
      _exit(127);  // exec failed.
    }
    close(fds[1]);
    out = fdopen(fds[0], "r");
    ASSERT_NE(out, nullptr);
  }

  /// Blocks until the startup banner arrives and returns the bound port.
  std::uint16_t wait_for_port() {
    char line[512];
    while (std::fgets(line, sizeof line, out) != nullptr) {
      unsigned port = 0;
      if (std::sscanf(line, "serving predictions on %*[0-9.]:%u", &port) == 1)
        return static_cast<std::uint16_t>(port);
    }
    ADD_FAILURE() << "server banner never arrived";
    return 0;
  }

  /// Reaps the child and returns its exit status; -1 if it did not exit
  /// cleanly within ~10s.
  int wait_for_exit() {
    for (int i = 0; i < 1000; ++i) {
      int status = 0;
      const pid_t done = waitpid(pid, &status, WNOHANG);
      if (done == pid) {
        pid = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return -1;
  }
};

TEST(ServeSignal, SigtermDrainsAdmittedRequestsAndExitsZero) {
  ServeProcess child;
  child.spawn(saved_model_path());
  if (HasFatalFailure()) return;
  const std::uint16_t port = child.wait_for_port();
  ASSERT_NE(port, 0);

  PredictionClient client("127.0.0.1", port);
  ASSERT_TRUE(client.ping());

  // Pipeline a burst without reading replies, so a prefix is still
  // sitting in the batcher queue when the signal lands.
  constexpr int kRequests = 64;
  std::set<std::string> outstanding;
  for (int i = 0; i < kRequests; ++i) {
    const std::string id = "sig-" + std::to_string(i);
    client.send_line(predict_request_line(id, planned_transfer(i)));
    outstanding.insert(id);
  }
  // Give the connection thread a moment to admit the burst, then signal.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(kill(child.pid, SIGTERM), 0) << std::strerror(errno);

  // Every admitted request must still be answered: a prediction, or a
  // structured shutting_down/overloaded rejection. Nothing may vanish.
  int answered_ok = 0;
  while (!outstanding.empty()) {
    std::string line;
    try {
      line = client.read_line();
    } catch (const std::exception&) {
      break;  // EOF after drain.
    }
    const auto reply = PredictionClient::parse_reply(line);
    ASSERT_EQ(outstanding.erase(reply.id), 1u)
        << "unexpected or duplicate reply id " << reply.id;
    if (reply.ok) {
      ++answered_ok;
      EXPECT_GT(reply.rate_mbps, 0.0);
      EXPECT_FALSE(reply.trace_id.empty());
    } else {
      EXPECT_TRUE(reply.error == "shutting_down" ||
                  reply.error == "overloaded")
          << reply.error;
    }
  }
  EXPECT_TRUE(outstanding.empty())
      << outstanding.size() << " requests were never answered";
  EXPECT_GT(answered_ok, 0) << "drain answered nothing successfully";

  EXPECT_EQ(child.wait_for_exit(), 0);
}

// The event-loop variant of the drain contract: idle connections parked
// on the epoll loop must not stall shutdown, and a binary-mode client
// with pipelined packed requests is drained exactly like a JSON one.
TEST(ServeSignal, SigtermDrainsBinaryClientWithIdleConnectionsParked) {
  ServeProcess child;
  child.spawn(saved_model_path());
  if (HasFatalFailure()) return;
  const std::uint16_t port = child.wait_for_port();
  ASSERT_NE(port, 0);

  // Park idle connections the poll loop must close on its own at exit.
  std::vector<std::unique_ptr<PredictionClient>> idle;
  for (int i = 0; i < 32; ++i)
    idle.push_back(std::make_unique<PredictionClient>("127.0.0.1", port));

  PredictionClient client("127.0.0.1", port);
  client.negotiate_binary();
  ASSERT_TRUE(client.binary());
  ASSERT_TRUE(client.ping());  // kJson frame round trip.

  constexpr int kRequests = 48;
  std::set<std::uint64_t> outstanding;
  for (int i = 0; i < kRequests; ++i) {
    const auto id = static_cast<std::uint64_t>(1000 + i);
    client.send_raw(binary_predict_request(id, planned_transfer(i)));
    outstanding.insert(id);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(kill(child.pid, SIGTERM), 0) << std::strerror(errno);

  int answered_ok = 0;
  while (!outstanding.empty()) {
    BinaryType type;
    std::string payload;
    try {
      std::tie(type, payload) = client.read_frame();
    } catch (const std::exception&) {
      break;  // EOF after drain.
    }
    if (type == BinaryType::kJson) continue;
    const BinaryPredictReply reply = parse_binary_reply(type, payload);
    ASSERT_EQ(outstanding.erase(reply.id), 1u)
        << "unexpected or duplicate packed reply id " << reply.id;
    if (reply.ok) {
      ++answered_ok;
      EXPECT_GT(reply.rate_mbps, 0.0);
      EXPECT_NE(reply.trace_id, 0u);
    } else {
      EXPECT_TRUE(reply.error == "shutting_down" ||
                  reply.error == "overloaded")
          << reply.error;
    }
  }
  EXPECT_TRUE(outstanding.empty())
      << outstanding.size() << " packed requests were never answered";
  EXPECT_GT(answered_ok, 0) << "drain answered nothing successfully";

  EXPECT_EQ(child.wait_for_exit(), 0);
}

// Handlers are installed before the banner is printed, so a signal that
// lands the instant the banner appears must still drain cleanly — the
// startup-race regression test for the poll-thread handoff.
TEST(ServeSignal, SigtermImmediatelyAfterBannerExitsZero) {
  ServeProcess child;
  child.spawn(saved_model_path());
  if (HasFatalFailure()) return;
  const std::uint16_t port = child.wait_for_port();
  ASSERT_NE(port, 0);
  ASSERT_EQ(kill(child.pid, SIGTERM), 0) << std::strerror(errno);
  EXPECT_EQ(child.wait_for_exit(), 0);
}

TEST(ServeSignal, SigintAlsoStopsTheServerCleanly) {
  ServeProcess child;
  child.spawn(saved_model_path());
  if (HasFatalFailure()) return;
  const std::uint16_t port = child.wait_for_port();
  ASSERT_NE(port, 0);

  {
    PredictionClient client("127.0.0.1", port);
    const auto reply = client.predict(planned_transfer(0));
    ASSERT_TRUE(reply.ok);
  }
  ASSERT_EQ(kill(child.pid, SIGINT), 0) << std::strerror(errno);
  EXPECT_EQ(child.wait_for_exit(), 0);
}

}  // namespace
}  // namespace xfl::serve
