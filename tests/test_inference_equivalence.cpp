// Equivalence suite for the flattened batch-inference engine: on randomized
// fitted ensembles across depths, tree counts, feature counts, and row
// counts, every serving path must agree bit-for-bit with the reference
// per-row node walk — serial, with a 2-thread pool, and with a
// hardware-sized pool. This is the determinism contract of ml/gbt_flat.hpp:
// block boundaries and thread counts never change a single bit.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ml/gbt.hpp"
#include "ml/gbt_flat.hpp"

namespace xfl::ml {
namespace {

struct Synthetic {
  Matrix x;
  std::vector<double> y;
};

Synthetic make_data(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Synthetic data;
  data.x = Matrix(rows, cols);
  data.y.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    double target = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = rng.uniform(-3.0, 3.0);
      data.x.at(r, c) = v;
      target += (c % 2 == 0 ? 1.0 : -0.5) * v;
    }
    target += std::sin(data.x.at(r, 0)) * 2.0 + rng.normal(0.0, 0.1);
    data.y[r] = target;
  }
  return data;
}

/// All serving paths against the node walk on one fitted model + matrix.
void expect_all_paths_identical(const GradientBoostedTrees& model,
                                const Matrix& x) {
  std::vector<double> reference(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r)
    reference[r] = model.predict_nodewalk(x.row(r));

  // Per-row flat path.
  for (std::size_t r = 0; r < x.rows(); ++r)
    EXPECT_EQ(model.predict(x.row(r)), reference[r]) << "row " << r;

  // Batch, serial.
  std::vector<double> serial(x.rows());
  model.predict_batch(x, serial);
  EXPECT_EQ(serial, reference);

  // Batch, 2-thread pool (exercises block splitting on any host).
  ThreadPool two(2);
  std::vector<double> batch_two(x.rows());
  model.predict_batch(x, batch_two, &two);
  EXPECT_EQ(batch_two, reference);

  // Batch, hardware pool.
  ThreadPool hardware;
  std::vector<double> batch_hw(x.rows());
  model.predict_batch(x, batch_hw, &hardware);
  EXPECT_EQ(batch_hw, reference);

  // The convenience Matrix overload (spawns its own pool for large inputs).
  EXPECT_EQ(model.predict(x), reference);
}

/// Randomized sweep: depth 1..6, varying tree/feature/row counts. Seeds are
/// fixed so failures reproduce, but the models themselves are arbitrary.
class InferenceEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(InferenceEquivalence, AllPathsBitIdenticalToNodeWalk) {
  const int depth = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(depth));
  const std::size_t cols = 1 + static_cast<std::size_t>(rng.uniform_int(1, 12));
  const std::size_t train_rows =
      200 + static_cast<std::size_t>(rng.uniform_int(0, 400));

  GbtConfig config;
  config.max_depth = depth;
  config.trees = 10 + static_cast<int>(rng.uniform_int(0, 120));
  config.seed = 5000 + static_cast<std::uint64_t>(depth);
  GradientBoostedTrees model(config);
  const auto train = make_data(train_rows, cols, 99 + depth);
  model.fit(train.x, train.y);

  // Query rows from a different distribution than training, including
  // counts around the pool and row-block thresholds (1, 15, 16, 17, 777).
  for (const std::size_t rows : {std::size_t{1}, std::size_t{15},
                                 std::size_t{16}, std::size_t{17},
                                 std::size_t{777}}) {
    const auto query = make_data(rows, cols, 7777 + rows);
    expect_all_paths_identical(model, query.x);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, InferenceEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// NaN features must take the same route (right) in every path.
TEST(InferenceEquivalence, NanFeaturesRouteIdentically) {
  const auto train = make_data(300, 4, 31);
  GbtConfig config;
  config.trees = 40;
  GradientBoostedTrees model(config);
  model.fit(train.x, train.y);

  auto query = make_data(64, 4, 32);
  Rng rng(33);
  for (std::size_t r = 0; r < query.x.rows(); ++r)
    query.x.at(r, rng.uniform_int(0, 3)) =
        std::numeric_limits<double>::quiet_NaN();
  expect_all_paths_identical(model, query.x);
}

// Refitting must invalidate the compiled cache: serve the *new* model.
TEST(InferenceEquivalence, RefitRecompilesFlatEngine) {
  auto data_a = make_data(250, 3, 41);
  auto data_b = make_data(250, 3, 42);
  for (auto& target : data_b.y) target += 100.0;  // Clearly different model.

  GradientBoostedTrees model;
  model.fit(data_a.x, data_a.y);
  const double before = model.predict(data_a.x.row(0));
  model.fit(data_b.x, data_b.y);
  const double after = model.predict(data_a.x.row(0));
  EXPECT_NE(before, after);
  EXPECT_EQ(after, model.predict_nodewalk(data_a.x.row(0)));
}

// The compiled engine reports a shape consistent with its source config.
TEST(InferenceEquivalence, FlatShapeMatchesModel) {
  const auto data = make_data(300, 5, 51);
  GbtConfig config;
  config.trees = 30;
  config.max_depth = 4;
  GradientBoostedTrees model(config);
  model.fit(data.x, data.y);
  const FlatEnsemble& flat = model.flat();
  EXPECT_EQ(flat.tree_count(), 30u);
  EXPECT_LE(flat.max_depth(), 4);
  EXPECT_GE(flat.node_count(), flat.tree_count());
  EXPECT_DOUBLE_EQ(flat.scale(), config.learning_rate);
}

}  // namespace
}  // namespace xfl::ml
