// Equivalence suite for the flattened batch-inference engine: on randomized
// fitted ensembles across depths, tree counts, feature counts, and row
// counts, every serving path must agree bit-for-bit with the reference
// per-row node walk — serial, with a 2-thread pool, with a hardware-sized
// pool, and under every forced kernel the host can run (scalar / avx2 /
// quantized). This is the determinism contract of ml/gbt_flat.hpp: block
// boundaries, thread counts, and kernel choice never change a single bit.
// The quantized kernel's documented error bound is zero (rank codes
// reproduce x <= t exactly), so even it is held to EXPECT_EQ.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ml/gbt.hpp"
#include "ml/gbt_flat.hpp"
#include "obs/metrics.hpp"

namespace xfl::ml {
namespace {

struct Synthetic {
  Matrix x;
  std::vector<double> y;
};

Synthetic make_data(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Synthetic data;
  data.x = Matrix(rows, cols);
  data.y.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    double target = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = rng.uniform(-3.0, 3.0);
      data.x.at(r, c) = v;
      target += (c % 2 == 0 ? 1.0 : -0.5) * v;
    }
    target += std::sin(data.x.at(r, 0)) * 2.0 + rng.normal(0.0, 0.1);
    data.y[r] = target;
  }
  return data;
}

/// All serving paths against the node walk on one fitted model + matrix.
void expect_all_paths_identical(const GradientBoostedTrees& model,
                                const Matrix& x) {
  std::vector<double> reference(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r)
    reference[r] = model.predict_nodewalk(x.row(r));

  // Per-row flat path.
  for (std::size_t r = 0; r < x.rows(); ++r)
    EXPECT_EQ(model.predict(x.row(r)), reference[r]) << "row " << r;

  // Batch, serial.
  std::vector<double> serial(x.rows());
  model.predict_batch(x, serial);
  EXPECT_EQ(serial, reference);

  // Batch, 2-thread pool (exercises block splitting on any host).
  ThreadPool two(2);
  std::vector<double> batch_two(x.rows());
  model.predict_batch(x, batch_two, &two);
  EXPECT_EQ(batch_two, reference);

  // Batch, hardware pool.
  ThreadPool hardware;
  std::vector<double> batch_hw(x.rows());
  model.predict_batch(x, batch_hw, &hardware);
  EXPECT_EQ(batch_hw, reference);

  // The convenience Matrix overload (spawns its own pool for large inputs).
  EXPECT_EQ(model.predict(x), reference);

  // Every forced kernel the host can actually run, serial and pooled.
  // effective_kernel() tells us whether the request would degrade (no
  // AVX2, unquantizable ensemble); degraded kernels are exercised through
  // the kernel they degrade to, so skipping them here loses nothing.
  const FlatEnsemble& flat = model.flat();
  for (const Kernel kernel :
       {Kernel::kScalar, Kernel::kAvx2, Kernel::kQuantized}) {
    if (flat.effective_kernel(kernel) != kernel) continue;
    std::vector<double> forced(x.rows());
    flat.predict_batch(x, forced, nullptr, kernel);
    EXPECT_EQ(forced, reference) << "kernel " << kernel_name(kernel);
    std::vector<double> forced_pooled(x.rows());
    flat.predict_batch(x, forced_pooled, &two, kernel);
    EXPECT_EQ(forced_pooled, reference)
        << "kernel " << kernel_name(kernel) << " (pooled)";
  }
}

/// Randomized sweep: depth 1..6, varying tree/feature/row counts. Seeds are
/// fixed so failures reproduce, but the models themselves are arbitrary.
class InferenceEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(InferenceEquivalence, AllPathsBitIdenticalToNodeWalk) {
  const int depth = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(depth));
  const std::size_t cols = 1 + static_cast<std::size_t>(rng.uniform_int(1, 12));
  const std::size_t train_rows =
      200 + static_cast<std::size_t>(rng.uniform_int(0, 400));

  GbtConfig config;
  config.max_depth = depth;
  config.trees = 10 + static_cast<int>(rng.uniform_int(0, 120));
  config.seed = 5000 + static_cast<std::uint64_t>(depth);
  GradientBoostedTrees model(config);
  const auto train = make_data(train_rows, cols, 99 + depth);
  model.fit(train.x, train.y);

  // Query rows from a different distribution than training, including
  // counts around the pool and row-block thresholds (1, 15, 16, 17, 777).
  for (const std::size_t rows : {std::size_t{1}, std::size_t{15},
                                 std::size_t{16}, std::size_t{17},
                                 std::size_t{777}}) {
    const auto query = make_data(rows, cols, 7777 + rows);
    expect_all_paths_identical(model, query.x);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, InferenceEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// NaN features must take the same route (right) in every path.
TEST(InferenceEquivalence, NanFeaturesRouteIdentically) {
  const auto train = make_data(300, 4, 31);
  GbtConfig config;
  config.trees = 40;
  GradientBoostedTrees model(config);
  model.fit(train.x, train.y);

  auto query = make_data(64, 4, 32);
  Rng rng(33);
  for (std::size_t r = 0; r < query.x.rows(); ++r)
    query.x.at(r, rng.uniform_int(0, 3)) =
        std::numeric_limits<double>::quiet_NaN();
  expect_all_paths_identical(model, query.x);
}

// Refitting must invalidate the compiled cache: serve the *new* model.
TEST(InferenceEquivalence, RefitRecompilesFlatEngine) {
  auto data_a = make_data(250, 3, 41);
  auto data_b = make_data(250, 3, 42);
  for (auto& target : data_b.y) target += 100.0;  // Clearly different model.

  GradientBoostedTrees model;
  model.fit(data_a.x, data_a.y);
  const double before = model.predict(data_a.x.row(0));
  model.fit(data_b.x, data_b.y);
  const double after = model.predict(data_a.x.row(0));
  EXPECT_NE(before, after);
  EXPECT_EQ(after, model.predict_nodewalk(data_a.x.row(0)));
}

// The scalar kernel is the dispatch anchor: forcing it can never degrade,
// on any host or build, and it must reproduce the node walk bit-for-bit.
TEST(InferenceEquivalence, ForcedScalarAlwaysAvailableAndExact) {
  const auto train = make_data(400, 6, 61);
  GbtConfig config;
  config.trees = 60;
  GradientBoostedTrees model(config);
  model.fit(train.x, train.y);
  const FlatEnsemble& flat = model.flat();
  EXPECT_EQ(flat.effective_kernel(Kernel::kScalar), Kernel::kScalar);

  const auto query = make_data(333, 6, 62);
  std::vector<double> forced(query.x.rows());
  flat.predict_batch(query.x, forced, nullptr, Kernel::kScalar);
  for (std::size_t r = 0; r < query.x.rows(); ++r)
    EXPECT_EQ(forced[r], model.predict_nodewalk(query.x.row(r)))
        << "row " << r;
}

// Forcing the process-wide dispatch (the --kernel / XFL_KERNEL path) must
// steer kAuto without changing a single bit.
TEST(InferenceEquivalence, ActiveKernelOverrideSteersAutoDispatch) {
  const Kernel saved = active_kernel();
  const auto train = make_data(300, 4, 71);
  GradientBoostedTrees model;
  model.fit(train.x, train.y);
  const auto query = make_data(100, 4, 72);

  std::vector<double> baseline(query.x.rows());
  model.flat().predict_batch(query.x, baseline, nullptr, Kernel::kScalar);

  set_active_kernel(Kernel::kScalar);
  EXPECT_EQ(model.flat().effective_kernel(), Kernel::kScalar);
  std::vector<double> via_auto(query.x.rows());
  model.flat().predict_batch(query.x, via_auto);
  EXPECT_EQ(via_auto, baseline);

  set_active_kernel(saved);  // Never leak the override into other tests.
  EXPECT_EQ(active_kernel(), saved);
}

/// Build an ensemble straight through the Builder (bypassing fit()) so we
/// can hand it pathological shapes a training run would never produce.
FlatEnsemble build_raw(
    const std::vector<std::vector<std::array<double, 4>>>& trees) {
  FlatEnsemble::Builder builder(0.5, 1.0);
  for (const auto& tree : trees) {
    builder.begin_tree();
    for (const auto& node : tree)
      builder.add_node(static_cast<std::int32_t>(node[0]), node[1],
                       static_cast<std::int32_t>(node[2]),
                       static_cast<std::int32_t>(node[3]));
  }
  return std::move(builder).build();
}

// Unquantizable ensembles must be refused at compile time — with a reason
// and a counter bump — and the quantized *request* must degrade to an
// exact kernel that still answers bit-identically. Never silently wrong.
TEST(InferenceEquivalence, QuantizeRejectedEnsemblesFallBackExactly) {
  struct Case {
    const char* reason;
    /// Columns the query matrix needs (the walk reads features[id], so a
    /// huge-feature-id ensemble needs a correspondingly wide matrix).
    std::size_t cols;
    std::vector<std::vector<std::array<double, 4>>> trees;
  };
  std::vector<Case> cases;
  // A NaN split threshold cannot be rank-coded (NaN compares false).
  cases.push_back(
      {"nan split threshold", 1,
       {{{0.0, std::numeric_limits<double>::quiet_NaN(), 1, 2},
         {-1.0, 1.0, 0, 0},
         {-1.0, 2.0, 0, 0}}}});
  // A feature id beyond the int16 code range cannot be mask-indexed.
  cases.push_back({"feature id exceeds int16 code range", 40001,
                   {{{40000.0, 0.5, 1, 2},
                     {-1.0, 1.0, 0, 0},
                     {-1.0, 2.0, 0, 0}}}});
  // A left-spine chain deeper than the padding cap (19 split levels):
  // internal nodes 0..levels-1, the deepest left leaf at `levels`, and
  // node d's right leaf at levels+1+d.
  {
    Case deep;
    deep.reason = "tree too deep to pad";
    deep.cols = 1;
    std::vector<std::array<double, 4>> chain;
    const int levels = 21;
    for (int d = 0; d < levels; ++d)
      chain.push_back({0.0, static_cast<double>(d) - 10.0,
                       static_cast<double>(d + 1),
                       static_cast<double>(levels + 1 + d)});
    chain.push_back({-1.0, 99.0, 0, 0});  // Deepest left leaf.
    for (int d = 0; d < levels; ++d)
      chain.push_back({-1.0, static_cast<double>(d), 0, 0});  // Right leaves.
    deep.trees.push_back(std::move(chain));
    cases.push_back(std::move(deep));
  }

  for (const auto& test_case : cases) {
    const std::uint64_t fallbacks_before =
        obs::counter("gbt.flat.quantize_fallback").value();
    const FlatEnsemble flat = build_raw(test_case.trees);
    EXPECT_FALSE(flat.quantized_supported()) << test_case.reason;
    EXPECT_EQ(flat.quantize_reject_reason(), test_case.reason);
    EXPECT_EQ(obs::counter("gbt.flat.quantize_fallback").value(),
              fallbacks_before + 1)
        << test_case.reason;
    EXPECT_NE(flat.effective_kernel(Kernel::kQuantized), Kernel::kQuantized)
        << test_case.reason;

    // The degraded request still serves, bit-identical to forced scalar.
    Rng rng(4242);
    Matrix x(37, test_case.cols);
    for (std::size_t r = 0; r < x.rows(); ++r)
      for (std::size_t c = 0; c < x.cols(); ++c)
        x.at(r, c) = rng.uniform(-20.0, 20.0);
    std::vector<double> exact(x.rows());
    flat.predict_batch(x, exact, nullptr, Kernel::kScalar);
    std::vector<double> degraded(x.rows());
    flat.predict_batch(x, degraded, nullptr, Kernel::kQuantized);
    EXPECT_EQ(degraded, exact) << test_case.reason;
  }
}

// A quantizable Builder ensemble takes the quantized path and matches the
// scalar kernel bit-for-bit — including rows that are NaN, exactly on a
// threshold, and beyond every threshold.
TEST(InferenceEquivalence, QuantizedBuilderEnsembleExactOnEdgeValues) {
  const FlatEnsemble flat = build_raw({{{0.0, 0.5, 1, 2},
                                        {-1.0, 1.0, 0, 0},
                                        {0.0, 1.5, 3, 4},
                                        {-1.0, 2.0, 0, 0},
                                        {-1.0, 3.0, 0, 0}},
                                       {{0.0, -2.0, 1, 2},
                                        {-1.0, 10.0, 0, 0},
                                        {-1.0, 20.0, 0, 0}}});
  ASSERT_TRUE(flat.quantized_supported())
      << flat.quantize_reject_reason();

  Matrix x(7, 1);
  x.at(0, 0) = 0.5;    // Exactly on a threshold: must route left (<=).
  x.at(1, 0) = 1.5;    // Exactly on the second threshold.
  x.at(2, 0) = -2.0;   // Exactly on tree 2's threshold.
  x.at(3, 0) = -100.0; // Below every threshold.
  x.at(4, 0) = 100.0;  // Above every threshold.
  x.at(5, 0) = std::numeric_limits<double>::quiet_NaN();  // Routes right.
  x.at(6, 0) = 0.75;   // Between thresholds.
  std::vector<double> scalar(x.rows());
  flat.predict_batch(x, scalar, nullptr, Kernel::kScalar);
  std::vector<double> quantized(x.rows());
  flat.predict_batch(x, quantized, nullptr, Kernel::kQuantized);
  if (flat.effective_kernel(Kernel::kQuantized) == Kernel::kQuantized) {
    EXPECT_EQ(quantized, scalar);
  }
  for (std::size_t r = 0; r < x.rows(); ++r)
    EXPECT_EQ(flat.predict_one(x.row(r)), scalar[r]) << "row " << r;
}

// The compiled engine reports a shape consistent with its source config.
TEST(InferenceEquivalence, FlatShapeMatchesModel) {
  const auto data = make_data(300, 5, 51);
  GbtConfig config;
  config.trees = 30;
  config.max_depth = 4;
  GradientBoostedTrees model(config);
  model.fit(data.x, data.y);
  const FlatEnsemble& flat = model.flat();
  EXPECT_EQ(flat.tree_count(), 30u);
  EXPECT_LE(flat.max_depth(), 4);
  EXPECT_GE(flat.node_count(), flat.tree_count());
  EXPECT_DOUBLE_EQ(flat.scale(), config.learning_rate);
}

}  // namespace
}  // namespace xfl::ml
