// End-to-end contracts for the src/serve subsystem, in-process over
// loopback TCP:
//   - concurrent clients receive predictions bit-identical to direct
//     TransferPredictor::predict_rate_mbps calls;
//   - atomic hot reload under sustained load loses zero requests and
//     never mixes state from two models in one answer;
//   - a full queue yields structured "overloaded" rejections, not
//     latency collapse or a hang;
//   - malformed frames get error responses and the connection survives;
//   - graceful drain answers everything admitted before shutdown.
// The suite carries the tier2-serve label: run it under
// -DXFL_SANITIZE=thread like the other concurrency suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "core/predictor.hpp"
#include "obs/trace.hpp"
#include "serve/batcher.hpp"
#include "serve/client.hpp"
#include "serve/model_host.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/scenario.hpp"

namespace xfl::serve {
namespace {

const logs::LogStore& shared_log() {
  static const logs::LogStore log = [] {
    sim::EsnetConfig config;
    config.transfers = 1200;
    config.duration_s = 2.0 * 86400.0;
    config.seed = 17;
    return sim::make_esnet_testbed(config).run().log;
  }();
  return log;
}

std::shared_ptr<const core::TransferPredictor> fitted_predictor(int trees) {
  core::TransferPredictor::Options options;
  options.min_edge_transfers = 50;
  options.gbt.trees = trees;
  auto predictor = std::make_shared<core::TransferPredictor>(options);
  predictor->fit(shared_log());
  return predictor;
}

/// Model A (80 trees) and model B (40 trees): same log, different
/// hyper-parameters, so their answers for the same transfer differ and a
/// response can be attributed to exactly one of them.
std::shared_ptr<const core::TransferPredictor> model_a() {
  static const auto predictor = fitted_predictor(80);
  return predictor;
}

std::shared_ptr<const core::TransferPredictor> model_b() {
  static const auto predictor = fitted_predictor(40);
  return predictor;
}

std::string saved_model_path(
    const std::shared_ptr<const core::TransferPredictor>& predictor,
    const std::string& name) {
  const std::string path = testing::TempDir() + name;
  predictor->save_file(path);
  return path;
}

/// A deterministic mix of planned transfers spanning edge-model and
/// global-fallback routes.
std::vector<core::PlannedTransfer> transfer_mix() {
  std::vector<core::PlannedTransfer> mix;
  for (int i = 0; i < 12; ++i) {
    core::PlannedTransfer planned;
    planned.src = static_cast<endpoint::EndpointId>(i % 2 == 0 ? 0 : 2);
    planned.dst = static_cast<endpoint::EndpointId>(i % 3 == 0 ? 1 : 3);
    planned.bytes = (1.0 + i) * 5.0 * kGB;
    planned.files = static_cast<std::uint64_t>(1 + i * 3);
    planned.dirs = static_cast<std::uint64_t>(1 + i % 4);
    planned.concurrency = static_cast<std::uint32_t>(1 + i % 8);
    planned.parallelism = static_cast<std::uint32_t>(1 + (i * 5) % 8);
    mix.push_back(planned);
  }
  return mix;
}

features::ContentionFeatures heavy_load() {
  features::ContentionFeatures load;
  load.k_sout = mbps(800.0);
  load.k_din = mbps(500.0);
  load.g_src = 8.0;
  load.g_dst = 4.0;
  load.s_sout = 32.0;
  load.s_din = 16.0;
  return load;
}

// ---------------------------------------------------------------- protocol

TEST(ServeProtocol, ParsesPredictFrameWithDefaults) {
  const Frame frame =
      parse_frame(R"({"id":"7","src":3,"dst":4,"bytes":5e10})");
  ASSERT_EQ(frame.kind, Frame::Kind::kPredict);
  EXPECT_EQ(frame.id, "7");
  EXPECT_EQ(frame.predict.transfer.src, 3u);
  EXPECT_EQ(frame.predict.transfer.dst, 4u);
  EXPECT_DOUBLE_EQ(frame.predict.transfer.bytes, 5e10);
  EXPECT_EQ(frame.predict.transfer.files, 1u);
  EXPECT_EQ(frame.predict.transfer.concurrency, 4u);
  EXPECT_EQ(frame.predict.deadline_ms, 0u);
}

TEST(ServeProtocol, ParsesLoadObjectAndNumericId) {
  const Frame frame = parse_frame(
      R"({"id":12,"src":0,"dst":1,"bytes":1e9,"load":{"k_sout":2.5e8,"g_dst":4}})");
  ASSERT_EQ(frame.kind, Frame::Kind::kPredict);
  EXPECT_EQ(frame.id, "12");
  EXPECT_DOUBLE_EQ(frame.predict.load.k_sout, 2.5e8);
  EXPECT_DOUBLE_EQ(frame.predict.load.g_dst, 4.0);
  EXPECT_DOUBLE_EQ(frame.predict.load.k_din, 0.0);
}

TEST(ServeProtocol, RejectsMalformedFrames) {
  EXPECT_EQ(parse_frame("not json at all").kind, Frame::Kind::kBad);
  EXPECT_EQ(parse_frame("[1,2,3]").kind, Frame::Kind::kBad);
  // Missing required fields.
  EXPECT_EQ(parse_frame(R"({"id":"1","src":0,"bytes":1e9})").kind,
            Frame::Kind::kBad);
  // Unknown keys are rejected, not silently ignored.
  EXPECT_EQ(parse_frame(R"({"src":0,"dst":1,"bytes":1,"bogus":2})").kind,
            Frame::Kind::kBad);
  // Type and range violations.
  EXPECT_EQ(parse_frame(R"({"src":-1,"dst":1,"bytes":1})").kind,
            Frame::Kind::kBad);
  EXPECT_EQ(parse_frame(R"({"src":0,"dst":1,"bytes":"big"})").kind,
            Frame::Kind::kBad);
  EXPECT_EQ(parse_frame(R"({"src":0,"dst":1,"bytes":1,"files":0})").kind,
            Frame::Kind::kBad);
  EXPECT_EQ(
      parse_frame(R"({"src":0,"dst":1,"bytes":1,"load":{"k_zzz":1}})").kind,
      Frame::Kind::kBad);
  // The id survives into the bad frame for error correlation.
  const Frame bad = parse_frame(R"({"id":"keep","src":0,"bytes":1})");
  EXPECT_EQ(bad.kind, Frame::Kind::kBad);
  EXPECT_EQ(bad.id, "keep");
}

TEST(ServeProtocol, RequestLineRoundTripsThroughParser) {
  core::PlannedTransfer planned;
  planned.src = 5;
  planned.dst = 9;
  planned.bytes = 1.25e11;
  planned.files = 17;
  planned.dirs = 3;
  planned.concurrency = 6;
  planned.parallelism = 2;
  const features::ContentionFeatures load = heavy_load();
  const Frame frame =
      parse_frame(predict_request_line("42", planned, load, 250));
  ASSERT_EQ(frame.kind, Frame::Kind::kPredict);
  EXPECT_EQ(frame.predict.transfer.src, planned.src);
  EXPECT_EQ(frame.predict.transfer.dst, planned.dst);
  EXPECT_DOUBLE_EQ(frame.predict.transfer.bytes, planned.bytes);
  EXPECT_EQ(frame.predict.transfer.files, planned.files);
  EXPECT_EQ(frame.predict.deadline_ms, 250u);
  EXPECT_DOUBLE_EQ(frame.predict.load.k_sout, load.k_sout);
  EXPECT_DOUBLE_EQ(frame.predict.load.s_din, load.s_din);
}

TEST(ServeProtocol, ResponseRatePreservesDoubleBits) {
  const double rate = 123.45678901234567;
  const std::string line =
      predict_response("1", rate, true, 3, /*trace_id=*/17, /*server_ms=*/0.25);
  const PredictReply reply = PredictionClient::parse_reply(line);
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(reply.rate_mbps, rate);  // Exact: %.17g round-trips doubles.
  EXPECT_EQ(reply.model, "edge");
  EXPECT_EQ(reply.model_version, 3u);
  EXPECT_EQ(reply.trace_id, "t17");
  EXPECT_DOUBLE_EQ(reply.server_ms, 0.25);
}

TEST(ServeProtocol, TraceIdStringsRoundTrip) {
  std::uint64_t parsed = 0;
  EXPECT_TRUE(parse_trace_id(trace_id_string(17), parsed));
  EXPECT_EQ(parsed, 17u);
  EXPECT_FALSE(parse_trace_id("17", parsed));   // Missing prefix.
  EXPECT_FALSE(parse_trace_id("t", parsed));    // No digits.
  EXPECT_FALSE(parse_trace_id("t1x", parsed));  // Trailing junk.
}

TEST(ServeProtocol, FeedbackFramesParse) {
  const Frame frame =
      parse_frame(R"({"id":"9","feedback":"t42","observed_mbps":212.5})");
  ASSERT_EQ(frame.kind, Frame::Kind::kFeedback);
  EXPECT_EQ(frame.feedback.id, "9");
  EXPECT_EQ(frame.feedback.trace_id, 42u);
  EXPECT_DOUBLE_EQ(frame.feedback.observed_mbps, 212.5);

  // Strictness: bad trace ids, non-positive rates, unknown keys.
  EXPECT_EQ(parse_frame(R"({"feedback":"42","observed_mbps":1})").kind,
            Frame::Kind::kBad);
  EXPECT_EQ(parse_frame(R"({"feedback":"t42","observed_mbps":0})").kind,
            Frame::Kind::kBad);
  EXPECT_EQ(parse_frame(R"({"feedback":"t42","observed_mbps":1,"x":1})").kind,
            Frame::Kind::kBad);
  EXPECT_EQ(parse_frame(R"({"feedback":"t42"})").kind, Frame::Kind::kBad);
}

TEST(ServeProtocol, RegistryFlagOnlyValidWithStats) {
  const Frame stats = parse_frame(R"({"cmd":"stats","registry":true})");
  ASSERT_EQ(stats.kind, Frame::Kind::kAdmin);
  EXPECT_TRUE(stats.admin.registry);
  EXPECT_EQ(parse_frame(R"({"cmd":"ping","registry":true})").kind,
            Frame::Kind::kBad);
  EXPECT_EQ(parse_frame(R"({"cmd":"stats","registry":1})").kind,
            Frame::Kind::kBad);
}

// ----------------------------------------------------------- micro-batcher

TEST(MicroBatcher, BatchedAnswersMatchDirectCallsBitIdentically) {
  ModelHost host(model_a());
  MicroBatcher batcher(host, {.max_batch = 8, .queue_capacity = 64});
  const auto mix = transfer_mix();

  std::mutex mutex;
  std::vector<std::pair<std::size_t, double>> answered;
  std::atomic<std::size_t> pending{mix.size()};
  for (std::size_t i = 0; i < mix.size(); ++i) {
    BatchItem item;
    item.transfer = mix[i];
    item.load = heavy_load();
    item.done = [&, i](const PredictOutcome& outcome) {
      ASSERT_TRUE(outcome.ok);
      std::lock_guard lock(mutex);
      answered.emplace_back(i, outcome.rate_mbps);
      pending.fetch_sub(1);
    };
    ASSERT_EQ(batcher.submit(std::move(item)),
              MicroBatcher::Admission::kAccepted);
  }
  batcher.drain_and_stop();
  ASSERT_EQ(pending.load(), 0u);
  ASSERT_EQ(answered.size(), mix.size());
  for (const auto& [i, rate] : answered)
    EXPECT_EQ(rate, model_a()->predict_rate_mbps(mix[i], heavy_load()))
        << "row " << i;
}

TEST(MicroBatcher, ExpiredDeadlineTimesOutInsteadOfPredicting) {
  ModelHost host(model_a());
  MicroBatcher batcher(host, {.max_batch = 8, .queue_capacity = 8});
  batcher.pause();
  std::atomic<int> timeouts{0};
  BatchItem item;
  item.transfer = transfer_mix()[0];
  item.deadline_us = 1;  // Monotonic clock is far past 1us already.
  item.done = [&](const PredictOutcome& outcome) {
    EXPECT_FALSE(outcome.ok);
    EXPECT_STREQ(outcome.error, kErrTimeout);
    timeouts.fetch_add(1);
  };
  ASSERT_EQ(batcher.submit(std::move(item)),
            MicroBatcher::Admission::kAccepted);
  batcher.resume();
  batcher.drain_and_stop();
  EXPECT_EQ(timeouts.load(), 1);
}

TEST(MicroBatcher, RejectsWhenQueueFullAndAfterStop) {
  ModelHost host(model_a());
  MicroBatcher batcher(host, {.max_batch = 4, .queue_capacity = 2});
  batcher.pause();
  std::atomic<int> answered{0};
  auto make_item = [&] {
    BatchItem item;
    item.transfer = transfer_mix()[0];
    item.done = [&](const PredictOutcome&) { answered.fetch_add(1); };
    return item;
  };
  EXPECT_EQ(batcher.submit(make_item()), MicroBatcher::Admission::kAccepted);
  EXPECT_EQ(batcher.submit(make_item()), MicroBatcher::Admission::kAccepted);
  EXPECT_EQ(batcher.submit(make_item()),
            MicroBatcher::Admission::kOverloaded);
  EXPECT_EQ(batcher.queue_depth(), 2u);
  batcher.drain_and_stop();
  EXPECT_EQ(answered.load(), 2);  // Drain answered the admitted two.
  EXPECT_EQ(batcher.submit(make_item()),
            MicroBatcher::Admission::kShuttingDown);
}

// ------------------------------------------------------------- model host

TEST(ModelHost, FailedReloadKeepsServingOldModel) {
  ModelHost host(model_a(), "/nonexistent/model.txt");
  const auto before = host.snapshot();
  EXPECT_THROW(host.reload_from_file(), std::runtime_error);
  const auto after = host.snapshot();
  EXPECT_EQ(after.predictor.get(), before.predictor.get());
  EXPECT_EQ(after.version, before.version);
}

TEST(ModelHost, ReloadSwapsModelAndBumpsVersion) {
  const std::string path_b = saved_model_path(model_b(), "host_reload_b.txt");
  ModelHost host(model_a());
  const auto before = host.snapshot();
  EXPECT_EQ(before.version, 1u);
  const std::uint64_t version = host.reload_from_file(path_b);
  EXPECT_EQ(version, 2u);
  const auto after = host.snapshot();
  EXPECT_NE(after.predictor.get(), before.predictor.get());
  // The reloaded model answers like B, not like A.
  const auto planned = transfer_mix()[0];
  EXPECT_EQ(after.predictor->predict_rate_mbps(planned),
            model_b()->predict_rate_mbps(planned));
}

// ------------------------------------------------------------- end to end

struct RunningServer {
  explicit RunningServer(PredictionServer::Options options = {}) {
    host = std::make_unique<ModelHost>(model_a());
    server = std::make_unique<PredictionServer>(*host, options);
    server->start();
  }
  std::unique_ptr<ModelHost> host;
  std::unique_ptr<PredictionServer> server;
};

TEST(ServeE2E, ConcurrentClientsGetBitIdenticalAnswers) {
  RunningServer running({.max_batch = 8, .queue_capacity = 256, .monitor = {}});
  const auto mix = transfer_mix();
  const auto load = heavy_load();
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 40;

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      PredictionClient client("127.0.0.1", running.server->port());
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const auto& planned = mix[(c + r) % mix.size()];
        const bool with_load = r % 2 == 0;
        const auto reply =
            client.predict(planned, with_load ? load : features::ContentionFeatures{});
        const double expected = model_a()->predict_rate_mbps(
            planned, with_load ? load : features::ContentionFeatures{});
        if (!reply.ok || reply.rate_mbps != expected) failures.fetch_add(1);
        const bool edge =
            model_a()->has_edge_model({planned.src, planned.dst});
        if (reply.model != (edge ? "edge" : "global")) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServeE2E, HotReloadUnderLoadLosesNothingAndMixesNoTornState) {
  const std::string path_a = saved_model_path(model_a(), "serve_model_a.txt");
  const std::string path_b = saved_model_path(model_b(), "serve_model_b.txt");

  // The on-disk round trip is what the server actually serves after a
  // reload; precompute both models' expected answers from reloaded copies
  // so bit-identity is checked against exactly what load_file() produces.
  const auto disk_a = std::make_shared<const core::TransferPredictor>(
      core::TransferPredictor::load_file(path_a));
  const auto disk_b = std::make_shared<const core::TransferPredictor>(
      core::TransferPredictor::load_file(path_b));

  const auto mix = transfer_mix();
  std::vector<double> expected_a, expected_b;
  for (const auto& planned : mix) {
    expected_a.push_back(disk_a->predict_rate_mbps(planned));
    expected_b.push_back(disk_b->predict_rate_mbps(planned));
  }
  // The two models must actually disagree for attribution to mean much.
  ASSERT_NE(expected_a[0], expected_b[0]);

  ModelHost host(disk_a, path_a);
  PredictionServer server(
      host, {.max_batch = 8, .queue_capacity = 256, .monitor = {}});
  server.start();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> max_version_seen{1};
  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      PredictionClient client("127.0.0.1", server.port());
      std::size_t i = c;
      while (!stop.load()) {
        const std::size_t index = i++ % mix.size();
        const auto reply = client.predict(mix[index]);
        if (!reply.ok) {
          failures.fetch_add(1);  // Reload must lose zero requests.
          continue;
        }
        // Version 1 was published as A, every reload alternates B, A, ...
        // A torn answer — version from one model, rate from another —
        // fails here.
        const double expected = reply.model_version % 2 == 1
                                    ? expected_a[index]
                                    : expected_b[index];
        if (reply.rate_mbps != expected) failures.fetch_add(1);
        std::uint64_t seen = max_version_seen.load();
        while (reply.model_version > seen &&
               !max_version_seen.compare_exchange_weak(seen,
                                                       reply.model_version)) {
        }
      }
    });
  }

  // Reload repeatedly while the clients hammer the server.
  PredictionClient admin("127.0.0.1", server.port());
  for (int reload = 0; reload < 6; ++reload) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const std::string& next = reload % 2 == 0 ? path_b : path_a;
    EXPECT_EQ(admin.reload(next), static_cast<std::uint64_t>(reload + 2));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stop.store(true);
  for (auto& thread : clients) thread.join();
  server.stop();

  EXPECT_EQ(failures.load(), 0);
  // Both models actually served traffic during the run.
  EXPECT_GE(max_version_seen.load(), 2u);
}

TEST(ServeE2E, QueueOverflowYieldsStructuredOverloadedResponses) {
  RunningServer running({.max_batch = 64, .queue_capacity = 4, .monitor = {}});
  running.server->batcher().pause();

  PredictionClient client("127.0.0.1", running.server->port());
  const auto mix = transfer_mix();
  constexpr int kPipelined = 12;
  for (int i = 0; i < kPipelined; ++i)
    client.send_line(
        predict_request_line(std::to_string(i), mix[i % mix.size()]));

  // With the batcher paused, exactly queue_capacity requests are admitted
  // and the rest are rejected immediately — read those 8 rejections first.
  std::set<std::string> rejected_ids;
  for (int i = 0; i < kPipelined - 4; ++i) {
    const auto reply = PredictionClient::parse_reply(client.read_line());
    EXPECT_FALSE(reply.ok);
    EXPECT_EQ(reply.error, kErrOverloaded);
    rejected_ids.insert(reply.id);
  }
  EXPECT_EQ(rejected_ids.size(), static_cast<std::size_t>(kPipelined - 4));

  running.server->batcher().resume();
  std::set<std::string> served_ids;
  for (int i = 0; i < 4; ++i) {
    const auto reply = PredictionClient::parse_reply(client.read_line());
    EXPECT_TRUE(reply.ok);
    served_ids.insert(reply.id);
  }
  // The admitted requests are the first four sent.
  EXPECT_EQ(served_ids, (std::set<std::string>{"0", "1", "2", "3"}));
}

TEST(ServeE2E, ExpiredDeadlineReturnsTimeoutNotAnswer) {
  RunningServer running({.max_batch = 8, .queue_capacity = 16, .monitor = {}});
  running.server->batcher().pause();
  PredictionClient client("127.0.0.1", running.server->port());
  client.send_line(predict_request_line("d", transfer_mix()[0], {},
                                        /*deadline_ms=*/1));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  running.server->batcher().resume();
  const auto reply = PredictionClient::parse_reply(client.read_line());
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, kErrTimeout);
  EXPECT_EQ(reply.id, "d");
}

TEST(ServeE2E, MalformedFramesGetErrorsAndServerSurvives) {
  RunningServer running;
  PredictionClient client("127.0.0.1", running.server->port());

  const std::vector<std::string> garbage = {
      "this is not json",
      "{\"src\":0}",
      "{\"id\":\"x\",\"src\":0,\"dst\":1,\"bytes\":-5}",
      "{\"cmd\":\"selfdestruct\"}",
      "[]",
  };
  for (const auto& line : garbage) {
    client.send_line(line);
    const auto reply = PredictionClient::parse_reply(client.read_line());
    EXPECT_FALSE(reply.ok) << line;
    EXPECT_EQ(reply.error, kErrBadRequest) << line;
  }

  // The same connection still serves valid requests afterwards.
  const auto planned = transfer_mix()[0];
  const auto reply = client.predict(planned);
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.rate_mbps, model_a()->predict_rate_mbps(planned));
}

TEST(ServeE2E, GracefulDrainAnswersEverythingAdmitted) {
  auto running = std::make_unique<RunningServer>(
      PredictionServer::Options{
          .max_batch = 64, .queue_capacity = 64, .monitor = {}});
  running->server->batcher().pause();
  PredictionClient client("127.0.0.1", running->server->port());
  const auto mix = transfer_mix();
  constexpr int kPipelined = 6;
  for (int i = 0; i < kPipelined; ++i)
    client.send_line(
        predict_request_line(std::to_string(i), mix[i % mix.size()]));
  // Give the connection thread time to admit all six into the queue, then
  // stop: drain clears the pause and answers them before closing.
  while (running->server->batcher().queue_depth() < kPipelined)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::thread stopper([&] { running->server->stop(); });
  std::set<std::string> answered;
  for (int i = 0; i < kPipelined; ++i) {
    const auto reply = PredictionClient::parse_reply(client.read_line());
    EXPECT_TRUE(reply.ok);
    answered.insert(reply.id);
  }
  stopper.join();
  EXPECT_EQ(answered.size(), static_cast<std::size_t>(kPipelined));
}

TEST(ServeE2E, AdminPingAndStats) {
  RunningServer running;
  PredictionClient client("127.0.0.1", running.server->port());
  EXPECT_TRUE(client.ping());

  const auto planned = transfer_mix()[0];
  ASSERT_TRUE(client.predict(planned).ok);
  const auto stats = client.stats();
  const auto* version = stats.find("version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->number, 1.0);
  ASSERT_NE(stats.find("queue_depth"), nullptr);
  ASSERT_NE(stats.find("requests"), nullptr);
}

TEST(ServeE2E, ReloadFailureAnswersErrorAndKeepsServing) {
  RunningServer running;
  PredictionClient client("127.0.0.1", running.server->port());
  EXPECT_THROW(client.reload("/nonexistent/model.txt"), std::runtime_error);
  const auto planned = transfer_mix()[0];
  const auto reply = client.predict(planned);
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.rate_mbps, model_a()->predict_rate_mbps(planned));
  EXPECT_EQ(reply.model_version, 1u);
}

// Satellite of the telemetry PR: the serve-path spans recorded while
// concurrent clients hammer the server must export as well-formed Chrome
// trace JSON with well-nested (interval-contained) spans per thread.
// Per-thread begin/end pairs are monotone, so within one tid every event
// either contains or is disjoint from its successors — checkable with an
// end-time stack.
TEST(ServeE2E, ChromeTraceFromConcurrentLoadIsWellFormedAndWellNested) {
  obs::clear_trace();
  obs::set_tracing_enabled(true);
  {
    auto running = std::make_unique<RunningServer>(
        PredictionServer::Options{
            .max_batch = 8, .queue_capacity = 256, .monitor = {}});
    const auto mix = transfer_mix();
    constexpr int kThreads = 4;
    constexpr int kPerThread = 24;
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        PredictionClient client("127.0.0.1", running->server->port());
        for (int i = 0; i < kPerThread; ++i) {
          const auto reply = client.predict(mix[(t + i) % mix.size()]);
          if (!reply.ok) {
            ++failures;
            continue;
          }
          // Exercise the feedback path under concurrency too.
          const auto fb = client.feedback(reply.trace_id, reply.rate_mbps);
          if (!fb.ok || !fb.matched) ++failures;
        }
      });
    }
    for (auto& worker : workers) worker.join();
    EXPECT_EQ(failures.load(), 0);
    running->server->stop();
  }
  obs::set_tracing_enabled(false);

  // Export is parseable JSON with the trace_event envelope.
  std::ostringstream trace_out;
  obs::write_chrome_trace(trace_out);
  const auto doc = parse_json(trace_out.str());
  const auto* events_json = doc.find("traceEvents");
  ASSERT_NE(events_json, nullptr);
  EXPECT_FALSE(events_json->array.empty());

  // Per-tid well-nestedness: rebuild the span stack from the recorded
  // depths (sorted by start; parents before children on timestamp ties)
  // and assert every span's interval lies inside its enclosing span's.
  // Comparisons are <= on purpose — the clock has 1us granularity, so a
  // sub-microsecond child legitimately shares its parent's endpoints.
  auto events = obs::trace_events();
  ASSERT_FALSE(events.empty());
  std::map<std::uint32_t, std::vector<obs::TraceEvent>> by_tid;
  for (const auto& event : events) by_tid[event.tid].push_back(event);
  bool saw_request = false;
  bool saw_batch_stage = false;
  for (auto& [tid, tid_events] : by_tid) {
    std::stable_sort(tid_events.begin(), tid_events.end(),
                     [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                       return a.ts_us != b.ts_us ? a.ts_us < b.ts_us
                                                 : a.depth < b.depth;
                     });
    std::vector<obs::TraceEvent> open;
    for (const auto& event : tid_events) {
      saw_request |= std::string_view(event.name) == "serve.request";
      saw_batch_stage |= std::string_view(event.name) == "serve.batch.predict";
      ASSERT_GE(event.depth, 0) << event.name << " on tid " << tid;
      ASSERT_LE(event.depth, static_cast<std::int32_t>(open.size()))
          << event.name << " on tid " << tid
          << " claims a depth with no enclosing span";
      open.resize(static_cast<std::size_t>(event.depth));
      if (!open.empty()) {
        const auto& parent = open.back();
        EXPECT_LE(parent.ts_us, event.ts_us)
            << event.name << " starts before enclosing " << parent.name;
        EXPECT_LE(event.ts_us + event.dur_us, parent.ts_us + parent.dur_us)
            << event.name << " on tid " << tid << " outlives enclosing "
            << parent.name;
      }
      open.push_back(event);
    }
  }
  EXPECT_TRUE(saw_request);
  EXPECT_TRUE(saw_batch_stage);
  obs::clear_trace();
}

}  // namespace
}  // namespace xfl::serve
