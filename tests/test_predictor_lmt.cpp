#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "core/lmt_model.hpp"
#include "core/predictor.hpp"
#include "sim/scenario.hpp"

namespace xfl::core {
namespace {

const logs::LogStore& shared_log() {
  static const logs::LogStore log = [] {
    sim::EsnetConfig config;
    config.transfers = 1200;
    config.duration_s = 2.0 * 86400.0;
    config.seed = 17;
    return sim::make_esnet_testbed(config).run().log;
  }();
  return log;
}

TransferPredictor::Options fast_options() {
  TransferPredictor::Options options;
  options.min_edge_transfers = 50;
  options.gbt.trees = 80;
  return options;
}

TEST(Predictor, FitAndPredictPlausibleRates) {
  TransferPredictor predictor(fast_options());
  predictor.fit(shared_log());
  ASSERT_TRUE(predictor.fitted());

  PlannedTransfer planned;
  planned.src = 0;
  planned.dst = 1;
  planned.bytes = 50.0 * kGB;
  planned.files = 25;
  const double rate = predictor.predict_rate_mbps(planned);
  EXPECT_GT(rate, 10.0);     // Not absurdly slow...
  EXPECT_LT(rate, 1500.0);   // ...and below 10 Gb/s line rate.
}

TEST(Predictor, LoadLowersPrediction) {
  TransferPredictor predictor(fast_options());
  predictor.fit(shared_log());
  PlannedTransfer planned;
  planned.src = 0;
  planned.dst = 1;
  planned.bytes = 50.0 * kGB;
  planned.files = 25;
  const double idle = predictor.predict_rate_mbps(planned);
  features::ContentionFeatures heavy;
  heavy.k_sout = mbps(800.0);
  heavy.k_din = mbps(800.0);
  heavy.g_src = 16.0;
  heavy.g_dst = 16.0;
  heavy.s_sout = 64.0;
  heavy.s_din = 64.0;
  const double busy = predictor.predict_rate_mbps(planned, heavy);
  EXPECT_LT(busy, idle);
}

TEST(Predictor, DurationConsistentWithRate) {
  TransferPredictor predictor(fast_options());
  predictor.fit(shared_log());
  PlannedTransfer planned;
  planned.src = 0;
  planned.dst = 1;
  planned.bytes = 10.0 * kGB;
  planned.files = 10;
  const double rate_mbps = predictor.predict_rate_mbps(planned);
  const double duration = predictor.estimate_duration_s(planned);
  EXPECT_NEAR(duration, planned.bytes / mbps(rate_mbps), 1e-6);
}

TEST(Predictor, FallsBackToGlobalModelForUnseenEdge) {
  TransferPredictor predictor(fast_options());
  predictor.fit(shared_log());
  // Edge 3 -> 0 exists; an unused combination falls back cleanly.
  PlannedTransfer planned;
  planned.src = 2;
  planned.dst = 0;
  planned.bytes = kGB;
  planned.files = 5;
  EXPECT_FALSE(predictor.has_edge_model({99, 100}));
  const double rate = predictor.predict_rate_mbps(planned);
  EXPECT_GT(rate, 0.0);
}

TEST(Predictor, ExplainReturnsSortedImportances) {
  TransferPredictor predictor(fast_options());
  predictor.fit(shared_log());
  const auto importances = predictor.explain({0, 1});
  ASSERT_GE(importances.size(), 15u);
  for (std::size_t i = 1; i < importances.size(); ++i)
    EXPECT_GE(importances[i - 1].second, importances[i].second);
}

TEST(Predictor, CapabilityLookup) {
  TransferPredictor predictor(fast_options());
  predictor.fit(shared_log());
  const auto* capability = predictor.capability(0);
  ASSERT_NE(capability, nullptr);
  EXPECT_GT(capability->ro_max_Bps, 0.0);
  EXPECT_EQ(predictor.capability(250), nullptr);
}

TEST(Predictor, PredictBeforeFitRejected) {
  TransferPredictor predictor(fast_options());
  PlannedTransfer planned;
  planned.src = 0;
  planned.dst = 1;
  planned.bytes = 1.0;
  EXPECT_THROW(predictor.predict_rate_mbps(planned), xfl::ContractViolation);
}

TEST(Predictor, SaveLoadAnswersIdentically) {
  TransferPredictor predictor(fast_options());
  predictor.fit(shared_log());

  std::stringstream buffer;
  predictor.save(buffer);
  const auto loaded = TransferPredictor::load(buffer);
  ASSERT_TRUE(loaded.fitted());

  PlannedTransfer planned;
  planned.src = 0;
  planned.dst = 1;
  planned.bytes = 42.0 * kGB;
  planned.files = 17;
  features::ContentionFeatures load_state;
  load_state.k_sout = mbps(300.0);
  load_state.g_src = 8.0;
  EXPECT_DOUBLE_EQ(loaded.predict_rate_mbps(planned, load_state),
                   predictor.predict_rate_mbps(planned, load_state));

  // Fallback path (global model with capabilities) matches too.
  planned.src = 2;
  planned.dst = 3;
  EXPECT_DOUBLE_EQ(loaded.predict_rate_mbps(planned),
                   predictor.predict_rate_mbps(planned));

  // Explanations and capabilities survive.
  EXPECT_EQ(loaded.explain({0, 1}), predictor.explain({0, 1}));
  ASSERT_NE(loaded.capability(0), nullptr);
  EXPECT_DOUBLE_EQ(loaded.capability(0)->ro_max_Bps,
                   predictor.capability(0)->ro_max_Bps);
}

TEST(Predictor, BatchPredictEmptyInputYieldsEmptyOutput) {
  TransferPredictor predictor(fast_options());
  predictor.fit(shared_log());
  EXPECT_TRUE(predictor.predict_rates_mbps({}).empty());
}

TEST(Predictor, BatchPredictMismatchedLoadSpanRejected) {
  TransferPredictor predictor(fast_options());
  predictor.fit(shared_log());
  std::vector<PlannedTransfer> transfers(3);
  for (auto& planned : transfers) {
    planned.src = 0;
    planned.dst = 1;
    planned.bytes = kGB;
  }
  std::vector<features::ContentionFeatures> loads(2);  // 2 != 3.
  EXPECT_THROW(predictor.predict_rates_mbps(transfers, loads),
               xfl::ContractViolation);
}

TEST(Predictor, BatchPredictEmptyLoadSpanMeansAllIdle) {
  TransferPredictor predictor(fast_options());
  predictor.fit(shared_log());
  std::vector<PlannedTransfer> transfers(4);
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    transfers[i].src = i % 2;
    transfers[i].dst = 2 + i % 2;
    transfers[i].bytes = (1.0 + i) * kGB;
    transfers[i].files = 1 + i;
  }
  const auto rates = predictor.predict_rates_mbps(transfers);
  ASSERT_EQ(rates.size(), transfers.size());
  for (std::size_t i = 0; i < transfers.size(); ++i)
    EXPECT_EQ(rates[i], predictor.predict_rate_mbps(transfers[i]));
}

TEST(Predictor, SaveFileLoadFileRoundTripsAtomically) {
  TransferPredictor predictor(fast_options());
  predictor.fit(shared_log());

  const std::string path = testing::TempDir() + "predictor_roundtrip.txt";
  predictor.save_file(path);
  // The temp staging file must be gone after the atomic rename.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  EXPECT_NE(::access(tmp.c_str(), F_OK), 0);

  const auto loaded = TransferPredictor::load_file(path);
  ASSERT_TRUE(loaded.fitted());
  PlannedTransfer planned;
  planned.src = 0;
  planned.dst = 1;
  planned.bytes = 42.0 * kGB;
  planned.files = 17;
  EXPECT_DOUBLE_EQ(loaded.predict_rate_mbps(planned),
                   predictor.predict_rate_mbps(planned));

  // Saving over an existing file replaces it cleanly.
  predictor.save_file(path);
  EXPECT_DOUBLE_EQ(TransferPredictor::load_file(path).predict_rate_mbps(planned),
                   predictor.predict_rate_mbps(planned));
}

TEST(Predictor, LoadFileMissingPathThrows) {
  EXPECT_THROW(TransferPredictor::load_file("/nonexistent/dir/model.txt"),
               std::runtime_error);
}

TEST(Predictor, SaveFileUnwritableDirectoryThrowsAndLeavesNoTemp) {
  TransferPredictor predictor(fast_options());
  predictor.fit(shared_log());
  EXPECT_THROW(predictor.save_file("/nonexistent/dir/model.txt"),
               std::runtime_error);
}

TEST(Predictor, SaveFileWithBareFilenameSyncsCwdParent) {
  // A path with no directory component must fsync "." (the cwd), not
  // crash on an empty parent string. Run from the test's temp dir so the
  // artifact does not litter the build tree.
  TransferPredictor predictor(fast_options());
  predictor.fit(shared_log());
  char original[4096];
  ASSERT_NE(::getcwd(original, sizeof original), nullptr);
  ASSERT_EQ(::chdir(testing::TempDir().c_str()), 0);
  predictor.save_file("bare_model.txt");
  const auto loaded = TransferPredictor::load_file("bare_model.txt");
  PlannedTransfer planned;
  planned.src = 0;
  planned.dst = 1;
  planned.bytes = 10.0 * kGB;
  EXPECT_DOUBLE_EQ(loaded.predict_rate_mbps(planned),
                   predictor.predict_rate_mbps(planned));
  ::unlink("bare_model.txt");
  ASSERT_EQ(::chdir(original), 0);
}

TEST(Predictor, CloneAnswersIdenticallyAndIsIndependent) {
  TransferPredictor predictor(fast_options());
  predictor.fit(shared_log());
  const TransferPredictor cloned = predictor.clone();
  ASSERT_TRUE(cloned.fitted());

  PlannedTransfer planned;
  planned.src = 0;
  planned.dst = 1;
  planned.bytes = 42.0 * kGB;
  planned.files = 17;
  features::ContentionFeatures load;
  load.k_sout = mbps(200.0);
  load.g_dst = 4.0;
  // A clone is a save/load round trip: bit-identical answers.
  EXPECT_EQ(cloned.predict_rate_mbps(planned, load),
            predictor.predict_rate_mbps(planned, load));

  // Mutating the clone (refit of one edge) must not touch the original.
  std::vector<EdgeSample> samples;
  for (int i = 0; i < 40; ++i) {
    EdgeSample sample;
    sample.transfer.src = 0;
    sample.transfer.dst = 1;
    sample.transfer.bytes = (1.0 + i) * kGB;
    sample.transfer.files = static_cast<std::uint64_t>(1 + i);
    sample.observed_mbps = 100.0 + i;
    samples.push_back(sample);
  }
  TransferPredictor mutated = predictor.clone();
  ml::GbtConfig gbt;
  gbt.trees = 20;
  const double before = predictor.predict_rate_mbps(planned, load);
  mutated.refit_edge({0, 1}, samples, {}, gbt);
  EXPECT_EQ(predictor.predict_rate_mbps(planned, load), before);
}

TEST(Predictor, RefitEdgeLearnsFromServingSamples) {
  TransferPredictor predictor(fast_options());
  predictor.fit(shared_log());

  // Synthesize an unseen edge whose ground truth is a simple function of
  // bytes; after refit the dedicated model must beat the global fallback.
  const logs::EdgeKey edge{40, 41};
  ASSERT_FALSE(predictor.has_edge_model(edge));
  std::vector<EdgeSample> samples;
  for (int i = 0; i < 120; ++i) {
    EdgeSample sample;
    sample.transfer.src = edge.src;
    sample.transfer.dst = edge.dst;
    sample.transfer.bytes = (1.0 + i % 30) * kGB;
    sample.transfer.files = static_cast<std::uint64_t>(1 + i % 7);
    sample.transfer.concurrency = static_cast<std::uint32_t>(1 + i % 4);
    sample.observed_mbps = 50.0 + 2.0 * static_cast<double>(i % 30);
    samples.push_back(sample);
  }
  ml::GbtConfig gbt;
  gbt.trees = 60;
  predictor.refit_edge(edge, samples, {}, gbt);
  ASSERT_TRUE(predictor.has_edge_model(edge));

  double total_ape = 0.0;
  for (const auto& sample : samples) {
    const double rate = predictor.predict_rate_mbps(sample.transfer);
    total_ape += std::abs(rate - sample.observed_mbps) / sample.observed_mbps;
  }
  EXPECT_LT(total_ape / static_cast<double>(samples.size()), 0.15);

  // Contract checks: too few samples and non-positive rates are bugs.
  EXPECT_THROW(predictor.refit_edge(edge, std::span(samples.data(), 1), {}, gbt),
               xfl::ContractViolation);
  auto bad = samples;
  bad[3].observed_mbps = 0.0;
  EXPECT_THROW(predictor.refit_edge(edge, bad, {}, gbt),
               xfl::ContractViolation);
}

TEST(Predictor, SaveRequiresFitAndLoadRejectsGarbage) {
  TransferPredictor predictor(fast_options());
  std::stringstream buffer;
  EXPECT_THROW(predictor.save(buffer), xfl::ContractViolation);
  std::stringstream bad("wrong-magic 0 0");
  EXPECT_THROW(TransferPredictor::load(bad), std::runtime_error);
}

TEST(LmtStudy, MonitoredFeaturesCollapseError) {
  // §5.5.2's shape: adding ground-truth storage-load features must cut the
  // error substantially (paper: p95 9.29% -> 1.26%). The median error is
  // the stable assertion at test-sized sample counts; p95 is checked not
  // to regress materially.
  sim::LmtConfig scenario_config;
  scenario_config.test_transfers = 400;
  const auto scenario = sim::make_nersc_lmt(scenario_config);
  const auto result = scenario.run();

  LmtStudyConfig config;
  config.gbt.trees = 300;
  config.gbt.max_depth = 6;
  config.gbt.min_child_weight = 3.0;
  const auto report = run_lmt_study(result, scenario.monitored_endpoints[0],
                                    scenario.monitored_endpoints[1], config);
  EXPECT_GE(report.test_transfers, 300u);
  EXPECT_GT(report.baseline_p95, 0.0);
  EXPECT_LT(report.augmented_mdape, 0.8 * report.baseline_mdape);
  EXPECT_LT(report.augmented_p95, report.baseline_p95 * 1.1);
}

TEST(LmtStudy, RequiresMonitoredEndpoints) {
  sim::SimResult empty;
  LmtStudyConfig config;
  EXPECT_THROW(run_lmt_study(empty, 0, 1, config), xfl::ContractViolation);
}

}  // namespace
}  // namespace xfl::core
