// Cross-thread-count determinism contracts (tier 2).
//
// The parallel GBT trainer and the parallel contention sweep both promise
// bit-identical results regardless of how many workers they use: threading
// splits work by column / endpoint over privately-owned outputs, never by
// interleaving accumulation. These tests pin that contract by comparing
// serial, two-worker, and hardware-concurrency runs.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "features/contention.hpp"
#include "logs/log_store.hpp"
#include "ml/gbt.hpp"

namespace xfl {
namespace {

ml::Matrix make_features(std::size_t rows, std::size_t cols,
                         std::vector<double>& y, std::uint64_t seed) {
  Rng rng(seed);
  ml::Matrix x(rows, cols);
  y.resize(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t c = 0; c < cols; ++c) x.at(i, c) = rng.normal();
    y[i] = x.at(i, 0) * x.at(i, 0) + 2.0 * x.at(i, 2) + rng.normal(0.0, 0.1);
  }
  return x;
}

std::string fit_and_save(int threads) {
  std::vector<double> y;
  const auto x = make_features(300, 8, y, 11);
  ml::GbtConfig config;
  config.trees = 25;
  config.threads = threads;
  ml::GradientBoostedTrees model(config);
  model.fit(x, y);
  std::ostringstream out;
  model.save(out);
  return out.str();
}

TEST(ParallelDeterminism, GbtModelIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = fit_and_save(1);
  EXPECT_EQ(serial, fit_and_save(2));
  EXPECT_EQ(serial, fit_and_save(0));  // 0 = hardware concurrency.
}

logs::LogStore synthetic_log(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  logs::LogStore log;
  for (std::size_t i = 0; i < n; ++i) {
    logs::TransferRecord r;
    r.id = i + 1;
    r.src = static_cast<endpoint::EndpointId>(rng.uniform_int(0, 19));
    r.dst = static_cast<endpoint::EndpointId>(rng.uniform_int(0, 19));
    if (r.dst == r.src) r.dst = (r.src + 1) % 20;
    r.start_s = rng.uniform(0.0, 1.0e5);
    r.end_s = r.start_s + rng.uniform(10.0, 2000.0);
    r.bytes = rng.lognormal(23.0, 2.0);
    r.files = 1 + static_cast<std::uint64_t>(rng.uniform_int(0, 500));
    r.dirs = 1;
    r.concurrency = 1 + static_cast<int>(rng.uniform_int(0, 7));
    r.parallelism = 1 + static_cast<int>(rng.uniform_int(0, 7));
    log.append(r);
  }
  return log;
}

TEST(ParallelDeterminism, ContentionSweepMatchesSerialExactly) {
  const auto log = synthetic_log(2500, 17);
  const auto serial = features::compute_contention(log, 1);
  ASSERT_EQ(serial.size(), log.size());
  for (const int threads : {2, 0}) {  // 0 = hardware concurrency.
    const auto parallel = features::compute_contention(log, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].k_sout, parallel[i].k_sout) << "record " << i;
      EXPECT_EQ(serial[i].k_sin, parallel[i].k_sin) << "record " << i;
      EXPECT_EQ(serial[i].k_dout, parallel[i].k_dout) << "record " << i;
      EXPECT_EQ(serial[i].k_din, parallel[i].k_din) << "record " << i;
      EXPECT_EQ(serial[i].g_src, parallel[i].g_src) << "record " << i;
      EXPECT_EQ(serial[i].g_dst, parallel[i].g_dst) << "record " << i;
      EXPECT_EQ(serial[i].s_sout, parallel[i].s_sout) << "record " << i;
      EXPECT_EQ(serial[i].s_sin, parallel[i].s_sin) << "record " << i;
      EXPECT_EQ(serial[i].s_dout, parallel[i].s_dout) << "record " << i;
      EXPECT_EQ(serial[i].s_din, parallel[i].s_din) << "record " << i;
    }
  }
}

TEST(ParallelDeterminism, GbtBatchPredictMatchesSerialExactly) {
  std::vector<double> y;
  const auto x = make_features(400, 6, y, 23);
  ml::GbtConfig config;
  config.trees = 20;
  config.threads = 1;
  ml::GradientBoostedTrees model(config);
  model.fit(x, y);

  const auto serial = model.predict(x);
  ml::GbtConfig parallel_config = config;
  parallel_config.threads = 0;
  ml::GradientBoostedTrees parallel_model(parallel_config);
  parallel_model.fit(x, y);
  const auto parallel = parallel_model.predict(x);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], parallel[i]) << "row " << i;
}

}  // namespace
}  // namespace xfl
