#include "core/bound_survey.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "sim/scenario.hpp"

namespace xfl::core {
namespace {

const AnalysisContext& testbed_context() {
  static const AnalysisContext context = [] {
    sim::EsnetConfig config;
    config.transfers = 1500;
    config.duration_s = 3.0 * 86400.0;
    config.seed = 41;
    return analyze_log(sim::make_esnet_testbed(config).run().log);
  }();
  return context;
}

const sim::Scenario& testbed() {
  static const sim::Scenario scenario = [] {
    sim::EsnetConfig config;
    config.transfers = 0;
    return sim::make_esnet_testbed(config);
  }();
  return scenario;
}

TEST(BoundSurvey, SurveysAllQualifyingEdges) {
  const auto& context = testbed_context();
  BoundSurveyConfig config;
  config.min_transfers = 50;
  const auto reports = survey_bounds(context, testbed().sites,
                                     testbed().endpoints,
                                     testbed().sim_config, config);
  EXPECT_EQ(reports.size(), 12u);  // All directed testbed pairs qualify.
  for (const auto& report : reports) {
    EXPECT_GT(report.estimate.dr_max_Bps, 0.0);
    EXPECT_GT(report.estimate.dw_max_Bps, 0.0);
    EXPECT_GT(report.estimate.mm_max_Bps, gbit(5.0));  // Probe ran.
    EXPECT_GT(report.observed_max_Bps, 0.0);
  }
}

TEST(BoundSurvey, CleanTestbedEdgesConsistent) {
  // No chronic unknown load on the testbed: every edge's best transfer
  // comes close to its subsystem bound.
  const auto& context = testbed_context();
  const auto reports = survey_bounds(context, testbed().sites,
                                     testbed().endpoints,
                                     testbed().sim_config);
  const auto summary = summarize_survey(reports);
  EXPECT_EQ(summary.consistent, reports.size());
  EXPECT_EQ(summary.below, 0u);
  EXPECT_EQ(summary.exceeds, 0u);
  // Counts are a partition of the consistent set.
  EXPECT_EQ(summary.read_limited + summary.network_limited +
                summary.write_limited,
            summary.consistent);
}

TEST(BoundSurvey, MaxEdgesTruncates) {
  const auto& context = testbed_context();
  BoundSurveyConfig config;
  config.max_edges = 5;
  const auto reports = survey_bounds(context, testbed().sites,
                                     testbed().endpoints,
                                     testbed().sim_config, config);
  EXPECT_EQ(reports.size(), 5u);
}

TEST(BoundSurvey, SummaryOfManualReports) {
  std::vector<EdgeBoundReport> reports(3);
  reports[0].estimate = {2.0, 3.0, 4.0};
  reports[0].observed_max_Bps = 2.0;  // ratio 1.0, read-limited.
  reports[0].validation = validate_bound(2.0, reports[0].estimate);
  reports[1].estimate = {4.0, 3.0, 5.0};
  reports[1].observed_max_Bps = 1.0;  // ratio 0.33 -> below.
  reports[1].validation = validate_bound(1.0, reports[1].estimate);
  reports[2].estimate = {4.0, 3.0, 5.0};
  reports[2].observed_max_Bps = 4.5;  // ratio 1.5 -> exceeds.
  reports[2].validation = validate_bound(4.5, reports[2].estimate);
  const auto summary = summarize_survey(reports);
  EXPECT_EQ(summary.consistent, 1u);
  EXPECT_EQ(summary.read_limited, 1u);
  EXPECT_EQ(summary.below, 1u);
  EXPECT_EQ(summary.exceeds, 1u);
}

TEST(BoundSurvey, ContractChecks) {
  const auto& context = testbed_context();
  BoundSurveyConfig config;
  config.probe_repetitions = 0;
  EXPECT_THROW(survey_bounds(context, testbed().sites, testbed().endpoints,
                             testbed().sim_config, config),
               xfl::ContractViolation);
}

}  // namespace
}  // namespace xfl::core
