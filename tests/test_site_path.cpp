#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "net/path.hpp"
#include "net/site.hpp"

namespace xfl::net {
namespace {

TEST(SiteCatalog, AddAndLookup) {
  SiteCatalog catalog;
  const auto id = catalog.add({"X", {10.0, 20.0}});
  EXPECT_EQ(catalog[id].name, "X");
  SiteId found = 99;
  EXPECT_TRUE(catalog.find("X", found));
  EXPECT_EQ(found, id);
  EXPECT_FALSE(catalog.find("Y", found));
}

TEST(SiteCatalog, KnownFacilitiesContainPaperSites) {
  const auto catalog = SiteCatalog::with_known_facilities();
  SiteId id = 0;
  for (const char* name : {"ANL", "BNL", "CERN", "LBL", "NERSC", "TACC",
                           "SDSC", "JLAB", "UCAR", "Colorado", "ALCF"}) {
    EXPECT_TRUE(catalog.find(name, id)) << name;
  }
}

TEST(SiteCatalog, DistanceSymmetricAndPlausible) {
  const auto catalog = SiteCatalog::with_known_facilities();
  SiteId anl = 0, cern = 0;
  ASSERT_TRUE(catalog.find("ANL", anl));
  ASSERT_TRUE(catalog.find("CERN", cern));
  EXPECT_DOUBLE_EQ(catalog.distance_km(anl, cern),
                   catalog.distance_km(cern, anl));
  EXPECT_GT(catalog.distance_km(anl, cern), 6000.0);
}

TEST(SiteCatalog, OutOfRangeIdThrows) {
  SiteCatalog catalog;
  EXPECT_THROW(catalog[0], xfl::ContractViolation);
}

TEST(DerivePath, RttGrowsWithDistance) {
  const auto catalog = SiteCatalog::with_known_facilities();
  SiteId anl = 0, bnl = 0, cern = 0;
  ASSERT_TRUE(catalog.find("ANL", anl));
  ASSERT_TRUE(catalog.find("BNL", bnl));
  ASSERT_TRUE(catalog.find("CERN", cern));
  const auto near = derive_path(catalog, anl, bnl);
  const auto far = derive_path(catalog, anl, cern);
  EXPECT_LT(near.rtt_s, far.rtt_s);
  EXPECT_LT(near.loss_rate, far.loss_rate);
}

TEST(DerivePath, IntercontinentalRttPlausible) {
  const auto catalog = SiteCatalog::with_known_facilities();
  SiteId anl = 0, cern = 0;
  ASSERT_TRUE(catalog.find("ANL", anl));
  ASSERT_TRUE(catalog.find("CERN", cern));
  const auto path = derive_path(catalog, anl, cern);
  EXPECT_GT(path.rtt_s, 0.08);
  EXPECT_LT(path.rtt_s, 0.2);
}

TEST(DerivePath, SameSiteStillValid) {
  const auto catalog = SiteCatalog::with_known_facilities();
  SiteId anl = 0;
  ASSERT_TRUE(catalog.find("ANL", anl));
  const auto path = derive_path(catalog, anl, anl);
  EXPECT_GT(path.rtt_s, 0.0);
  EXPECT_GT(path.capacity_Bps, 0.0);
  EXPECT_LT(path.loss_rate, 1.0);
}

TEST(DerivePath, DefaultsApplied) {
  const auto catalog = SiteCatalog::with_known_facilities();
  SiteId anl = 0, lbl = 0;
  ASSERT_TRUE(catalog.find("ANL", anl));
  ASSERT_TRUE(catalog.find("LBL", lbl));
  PathDefaults defaults;
  defaults.capacity_Bps = 42.0;
  const auto path = derive_path(catalog, anl, lbl, defaults);
  EXPECT_DOUBLE_EQ(path.capacity_Bps, 42.0);
}

}  // namespace
}  // namespace xfl::net
