// Tests for the simulator's service-level behaviours: per-endpoint
// admission control (Globus limits concurrent transfers per endpoint) and
// SNMP-style WAN load sampling (§8 extension).
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "endpoint/endpoint.hpp"
#include "net/site.hpp"
#include "sim/simulator.hpp"

namespace xfl::sim {
namespace {

struct TwoSiteWorld {
  net::SiteCatalog sites;
  endpoint::EndpointCatalog endpoints;

  TwoSiteWorld() {
    sites.add({"A", {41.708, -87.983}});
    sites.add({"B", {40.873, -72.872}});
    endpoints.add(endpoint::make_dtn("a-dtn", 0));
    endpoints.add(endpoint::make_dtn("b-dtn", 1));
  }
};

TransferRequest make_request(std::uint64_t id, double submit, double bytes) {
  TransferRequest req;
  req.id = id;
  req.src = 0;
  req.dst = 1;
  req.submit_s = submit;
  req.bytes = bytes;
  req.files = 10;
  req.dirs = 1;
  req.params.concurrency = 4;
  req.params.parallelism = 4;
  return req;
}

SimConfig capped_config(std::uint32_t cap) {
  SimConfig config;
  config.enable_faults = false;
  config.max_active_per_endpoint = cap;
  return config;
}

TEST(Admission, AllTransfersEventuallyComplete) {
  TwoSiteWorld world;
  Simulator sim(world.sites, world.endpoints, capped_config(2));
  for (int i = 0; i < 30; ++i)
    sim.submit(make_request(static_cast<std::uint64_t>(i + 1), 0.0, 5.0 * kGB));
  const auto result = sim.run();
  EXPECT_EQ(result.log.size(), 30u);
}

TEST(Admission, QueueWaitCountsTowardDuration) {
  // With cap 1, transfer 2 waits for transfer 1 even though both were
  // submitted together, so its logged rate is roughly half of the lone
  // transfer's (duration includes the service queue, as in Globus).
  TwoSiteWorld world;
  Simulator sim(world.sites, world.endpoints, capped_config(1));
  sim.submit(make_request(1, 0.0, 20.0 * kGB));
  sim.submit(make_request(2, 0.0, 20.0 * kGB));
  const auto result = sim.run();
  ASSERT_EQ(result.log.size(), 2u);
  const auto& first = result.log[0];
  const auto& second = result.log[1];
  EXPECT_GT(second.duration_s(), 1.8 * first.duration_s());
  EXPECT_LT(second.rate_Bps(), 0.6 * first.rate_Bps());
}

TEST(Admission, CapOneSerialisesRates) {
  // With cap 1 at both endpoints, transfers never share resources; each
  // runs at the full lone-transfer data rate once admitted.
  TwoSiteWorld world;
  Simulator lone_sim(world.sites, world.endpoints, capped_config(8));
  lone_sim.submit(make_request(1, 0.0, 20.0 * kGB));
  const double lone_rate = lone_sim.run().log[0].rate_Bps();

  Simulator sim(world.sites, world.endpoints, capped_config(1));
  for (int i = 0; i < 4; ++i)
    sim.submit(make_request(static_cast<std::uint64_t>(i + 1), 0.0, 20.0 * kGB));
  const auto result = sim.run();
  // The first-admitted transfer had no queue wait: full rate.
  double best = 0.0;
  for (const auto& record : result.log.records())
    best = std::max(best, record.rate_Bps());
  EXPECT_NEAR(best, lone_rate, 0.05 * lone_rate);
}

TEST(Admission, HeadOfLineDoesNotBlockOtherPairs) {
  // Endpoint pair (0,1) is saturated; a transfer on the unrelated pair
  // (2,3) must be admitted immediately despite arriving later.
  net::SiteCatalog sites;
  sites.add({"A", {41.7, -87.9}});
  sites.add({"B", {40.8, -72.8}});
  sites.add({"C", {37.8, -122.2}});
  sites.add({"D", {30.4, -97.7}});
  endpoint::EndpointCatalog endpoints;
  for (net::SiteId s = 0; s < 4; ++s)
    endpoints.add(endpoint::make_dtn("ep" + std::to_string(s), s));

  Simulator sim(sites, endpoints, capped_config(1));
  // Saturate 0->1 with two long transfers.
  sim.submit(make_request(1, 0.0, 100.0 * kGB));
  sim.submit(make_request(2, 0.0, 100.0 * kGB));
  // Unrelated pair.
  TransferRequest other = make_request(3, 1.0, 5.0 * kGB);
  other.src = 2;
  other.dst = 3;
  sim.submit(other);
  const auto result = sim.run();
  for (const auto& record : result.log.records()) {
    if (record.id != 3) continue;
    // Admitted right away: duration close to the unqueued transfer time.
    EXPECT_LT(record.duration_s(), 30.0);
  }
}

TEST(WanSampling, SeriesReflectsCarriedTraffic) {
  TwoSiteWorld world;
  SimConfig config;
  config.enable_faults = false;
  Simulator sim(world.sites, world.endpoints, config);
  sim.enable_wan_sampling(0, 1, 5.0);
  sim.submit(make_request(1, 20.0, 50.0 * kGB));
  const auto result = sim.run();
  const auto it = result.wan_samples.find({0, 1});
  ASSERT_NE(it, result.wan_samples.end());
  ASSERT_GT(it->second.size(), 3u);
  double peak = 0.0;
  double before_start = -1.0;
  for (const auto& sample : it->second) {
    peak = std::max(peak, sample.load_Bps);
    if (sample.time_s < 20.0) before_start = sample.load_Bps;
  }
  // Idle before the transfer starts; near the transfer rate at peak.
  EXPECT_DOUBLE_EQ(before_start, 0.0);
  EXPECT_GT(peak, 0.5 * gbit(7.8));
  // Samples are time-ordered.
  for (std::size_t i = 1; i < it->second.size(); ++i)
    EXPECT_GT(it->second[i].time_s, it->second[i - 1].time_s);
}

TEST(WanSampling, SeesBackgroundCrossTraffic) {
  TwoSiteWorld world;
  SimConfig config;
  config.enable_faults = false;
  Simulator sim(world.sites, world.endpoints, config);
  BackgroundSpec cross;
  cross.component = Component::kWan;
  cross.wan_src = 0;
  cross.wan_dst = 1;
  cross.demand_lo_Bps = 2.0e8;
  cross.demand_hi_Bps = 2.0e8;
  cross.mean_on_s = 1.0e9;    // Permanently on after the first toggle.
  cross.mean_off_s = 1.0e-3;
  sim.add_background(cross);
  sim.enable_wan_sampling(0, 1, 5.0);
  sim.submit(make_request(1, 500.0, 1.0 * kGB));  // Keeps the sim alive.
  const auto result = sim.run();
  const auto& series = result.wan_samples.at({0, 1});
  double late_load = 0.0;
  for (const auto& sample : series)
    if (sample.time_s > 100.0 && sample.time_s < 400.0)
      late_load = std::max(late_load, sample.load_Bps);
  // The monitor sees the non-Globus cross traffic (the whole point of §8).
  EXPECT_NEAR(late_load, 2.0e8, 1.0e7);
}

TEST(WanSampling, RejectsBadConfig) {
  TwoSiteWorld world;
  Simulator sim(world.sites, world.endpoints, {});
  EXPECT_THROW(sim.enable_wan_sampling(0, 1, 0.0), xfl::ContractViolation);
}

}  // namespace
}  // namespace xfl::sim
