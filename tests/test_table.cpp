#include "common/table.hpp"

#include <gtest/gtest.h>

namespace xfl {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable table;
  table.set_header({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const auto text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
}

TEST(TextTable, TitlePrintedFirst) {
  TextTable table;
  table.set_title("My Table");
  table.set_header({"a"});
  table.add_row({"x"});
  const auto text = table.to_string();
  EXPECT_EQ(text.rfind("My Table", 0), 0u);
}

TEST(TextTable, ColumnsAligned) {
  TextTable table;
  table.set_header({"col", "v"});
  table.add_row({"longer-cell", "1"});
  table.add_row({"s", "2"});
  const auto text = table.to_string();
  // Both data rows must place the second column at the same offset.
  const auto line_start = text.find("longer-cell");
  ASSERT_NE(line_start, std::string::npos);
  const auto row1 = text.substr(line_start, text.find('\n', line_start) - line_start);
  const auto short_start = text.find("\ns") + 1;
  const auto row2 = text.substr(short_start, text.find('\n', short_start) - short_start);
  EXPECT_EQ(row1.find('1'), row2.find('2'));
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.0, 0), "3");
  EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(TextTable, RowsWiderThanHeaderSupported) {
  TextTable table;
  table.set_header({"a"});
  table.add_row({"1", "2", "3"});
  const auto text = table.to_string();
  EXPECT_NE(text.find("3"), std::string::npos);
}

TEST(TextTable, EmptyTableRendersNothingFatal) {
  TextTable table;
  EXPECT_EQ(table.to_string(), "");
}

}  // namespace
}  // namespace xfl
