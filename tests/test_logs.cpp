#include <gtest/gtest.h>

#include <sstream>

#include "common/contracts.hpp"
#include "logs/log_store.hpp"

namespace xfl::logs {
namespace {

TransferRecord make_record(std::uint64_t id, endpoint::EndpointId src,
                           endpoint::EndpointId dst, double start, double end,
                           double bytes) {
  TransferRecord r;
  r.id = id;
  r.src = src;
  r.dst = dst;
  r.start_s = start;
  r.end_s = end;
  r.bytes = bytes;
  r.files = 10;
  r.dirs = 2;
  r.concurrency = 4;
  r.parallelism = 2;
  r.faults = 1;
  return r;
}

TEST(Record, RateAndDuration) {
  const auto r = make_record(1, 0, 1, 10.0, 20.0, 1000.0);
  EXPECT_DOUBLE_EQ(r.duration_s(), 10.0);
  EXPECT_DOUBLE_EQ(r.rate_Bps(), 100.0);
}

TEST(Record, RateRejectsZeroDuration) {
  auto r = make_record(1, 0, 1, 10.0, 10.0, 1000.0);
  EXPECT_THROW(r.rate_Bps(), xfl::ContractViolation);
}

TEST(Record, EffectiveProcessesAndStreams) {
  auto r = make_record(1, 0, 1, 0.0, 1.0, 1.0);
  r.concurrency = 8;
  r.parallelism = 4;
  r.files = 3;
  EXPECT_EQ(r.effective_processes(), 3u);
  EXPECT_EQ(r.effective_streams(), 12u);
  r.files = 100;
  EXPECT_EQ(r.effective_processes(), 8u);
  EXPECT_EQ(r.effective_streams(), 32u);
}

TEST(Record, ValidChecks) {
  EXPECT_TRUE(make_record(1, 0, 1, 0.0, 1.0, 1.0).valid());
  auto bad = make_record(1, 0, 1, 1.0, 1.0, 1.0);  // Zero duration.
  EXPECT_FALSE(bad.valid());
  auto bad2 = make_record(1, 0, 1, 0.0, 1.0, 1.0);
  bad2.files = 0;
  EXPECT_FALSE(bad2.valid());
}

TEST(LogStore, AppendAndIndex) {
  LogStore store;
  store.append(make_record(1, 0, 1, 0.0, 10.0, 100.0));
  store.append(make_record(2, 0, 1, 5.0, 15.0, 200.0));
  store.append(make_record(3, 1, 0, 0.0, 10.0, 300.0));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.edge_count({0, 1}), 2u);
  EXPECT_EQ(store.edge_count({1, 0}), 1u);
  EXPECT_EQ(store.edge_count({2, 3}), 0u);
}

TEST(LogStore, RejectsInvalidRecord) {
  LogStore store;
  EXPECT_THROW(store.append(make_record(1, 0, 1, 5.0, 5.0, 1.0)),
               xfl::ContractViolation);
}

TEST(LogStore, EdgesByUsageOrdersDescending) {
  LogStore store;
  store.append(make_record(1, 0, 1, 0.0, 1.0, 1.0));
  store.append(make_record(2, 0, 1, 0.0, 1.0, 1.0));
  store.append(make_record(3, 2, 3, 0.0, 1.0, 1.0));
  const auto edges = store.edges_by_usage();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (EdgeKey{0, 1}));
}

TEST(LogStore, EdgeTransfersSortedByStart) {
  LogStore store;
  store.append(make_record(1, 0, 1, 50.0, 60.0, 1.0));
  store.append(make_record(2, 0, 1, 10.0, 20.0, 1.0));
  store.append(make_record(3, 0, 1, 30.0, 40.0, 1.0));
  const auto idx = store.edge_transfers({0, 1});
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_LT(store[idx[0]].start_s, store[idx[1]].start_s);
  EXPECT_LT(store[idx[1]].start_s, store[idx[2]].start_s);
}

TEST(LogStore, EndpointTransfersIncludeBothDirections) {
  LogStore store;
  store.append(make_record(1, 0, 1, 0.0, 1.0, 1.0));
  store.append(make_record(2, 1, 2, 0.0, 1.0, 1.0));
  store.append(make_record(3, 2, 3, 0.0, 1.0, 1.0));
  EXPECT_EQ(store.endpoint_transfers(1).size(), 2u);
  EXPECT_EQ(store.endpoint_transfers(0).size(), 1u);
  EXPECT_EQ(store.endpoint_transfers(9).size(), 0u);
}

TEST(LogStore, EdgeMaxRate) {
  LogStore store;
  store.append(make_record(1, 0, 1, 0.0, 10.0, 100.0));   // 10 B/s
  store.append(make_record(2, 0, 1, 0.0, 10.0, 5000.0));  // 500 B/s
  EXPECT_DOUBLE_EQ(store.edge_max_rate({0, 1}), 500.0);
  EXPECT_THROW(store.edge_max_rate({5, 6}), xfl::ContractViolation);
}

TEST(LogStore, MaxRateBySide) {
  LogStore store;
  store.append(make_record(1, 0, 1, 0.0, 10.0, 100.0));  // 0 out at 10 B/s
  store.append(make_record(2, 1, 0, 0.0, 10.0, 900.0));  // 0 in at 90 B/s
  EXPECT_DOUBLE_EQ(store.max_rate_as_source(0), 10.0);
  EXPECT_DOUBLE_EQ(store.max_rate_as_destination(0), 90.0);
  EXPECT_DOUBLE_EQ(store.max_rate_as_source(7), 0.0);
}

TEST(LogStore, FilterKeepsMatching) {
  LogStore store;
  store.append(make_record(1, 0, 1, 0.0, 10.0, 100.0));
  store.append(make_record(2, 0, 1, 0.0, 10.0, 9000.0));
  const auto filtered =
      store.filter([](const TransferRecord& r) { return r.bytes > 1000.0; });
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].id, 2u);
}

TEST(LogStore, CsvRoundTripPreservesRecords) {
  LogStore store;
  auto r1 = make_record(1, 0, 1, 0.5, 10.25, 12345.0);
  r1.src_type = endpoint::EndpointType::kServer;
  r1.dst_type = endpoint::EndpointType::kPersonal;
  store.append(r1);
  store.append(make_record(2, 3, 2, 100.0, 228.5, 9.9e14));

  std::stringstream buffer;
  store.write_csv(buffer);
  const auto loaded = LogStore::read_csv(buffer);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].id, 1u);
  EXPECT_EQ(loaded[0].dst_type, endpoint::EndpointType::kPersonal);
  EXPECT_DOUBLE_EQ(loaded[0].start_s, 0.5);
  EXPECT_DOUBLE_EQ(loaded[1].bytes, 9.9e14);
  EXPECT_EQ(loaded[1].concurrency, 4u);
  EXPECT_EQ(loaded[1].faults, 1u);
}

TEST(LogStore, CsvRejectsMalformedRow) {
  std::stringstream buffer("id,src\n1,2\n");
  EXPECT_THROW(LogStore::read_csv(buffer), std::runtime_error);
}

TEST(LogStore, CsvEmptyStoreRoundTrips) {
  LogStore store;
  std::stringstream buffer;
  store.write_csv(buffer);
  const auto loaded = LogStore::read_csv(buffer);
  EXPECT_TRUE(loaded.empty());
}

}  // namespace
}  // namespace xfl::logs
