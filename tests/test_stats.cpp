#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace xfl {
namespace {

TEST(Stats, MeanOfKnownValues) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(v), 4.0);  // Classic textbook sample.
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(Stats, VarianceOfConstantIsZero) {
  const std::vector<double> v(10, 3.14);
  EXPECT_DOUBLE_EQ(variance(v), 0.0);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(Stats, PercentileSingleValue) {
  const std::vector<double> v = {7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 13.0), 7.0);
}

TEST(Stats, PercentileRejectsEmptyAndBadP) {
  EXPECT_THROW(percentile(std::vector<double>{}, 50.0), ContractViolation);
  const std::vector<double> v = {1.0};
  EXPECT_THROW(percentile(v, -1.0), ContractViolation);
  EXPECT_THROW(percentile(v, 101.0), ContractViolation);
}

TEST(Stats, MedianEvenCount) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Stats, PercentilesBatchMatchesSingles) {
  Rng rng(5);
  std::vector<double> v(1000);
  for (auto& x : v) x = rng.uniform();
  const std::vector<double> ps = {5.0, 25.0, 50.0, 90.0};
  const auto batch = percentiles(v, ps);
  ASSERT_EQ(batch.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i)
    EXPECT_DOUBLE_EQ(batch[i], percentile(v, ps[i]));
}

TEST(Stats, MinMax) {
  const std::vector<double> v = {3.0, -1.0, 9.0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 9.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg = y;
  for (auto& v : neg) v = -v;
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVarianceIsZero) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Stats, PearsonIndependentNearZero) {
  Rng rng(9);
  std::vector<double> x(20000), y(20000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.02);
}

TEST(Stats, SummarizeOrdersQuantiles) {
  Rng rng(15);
  std::vector<double> v(5000);
  for (auto& x : v) x = rng.normal();
  const auto s = summarize(v);
  EXPECT_LT(s.p5, s.p25);
  EXPECT_LT(s.p25, s.p50);
  EXPECT_LT(s.p50, s.p75);
  EXPECT_LT(s.p75, s.p95);
  EXPECT_EQ(s.count, v.size());
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(21);
  std::vector<double> v(10000);
  RunningStats running;
  for (auto& x : v) {
    x = rng.normal(5.0, 2.0);
    running.add(x);
  }
  EXPECT_NEAR(running.mean(), mean(v), 1e-9);
  EXPECT_NEAR(running.variance(), variance(v), 1e-6);
  EXPECT_DOUBLE_EQ(running.min(), min_value(v));
  EXPECT_DOUBLE_EQ(running.max(), max_value(v));
  EXPECT_EQ(running.count(), v.size());
}

TEST(Stats, RunningStatsFewSamples) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

// Percentiles of sorted data must be monotone in p for any sample.
class PercentileMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileMonotone, MonotoneInP) {
  Rng rng(GetParam());
  std::vector<double> v(500);
  for (auto& x : v) x = rng.lognormal(0.0, 2.0);
  double previous = -1.0;
  for (double p = 0.0; p <= 100.0; p += 2.5) {
    const double value = percentile(v, p);
    EXPECT_GE(value, previous);
    previous = value;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL));

}  // namespace
}  // namespace xfl
