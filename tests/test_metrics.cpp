#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"

namespace xfl::ml {
namespace {

TEST(Metrics, ApeBasics) {
  const std::vector<double> y = {100.0, 200.0};
  const std::vector<double> yhat = {110.0, 150.0};
  const auto errors = absolute_percentage_errors(y, yhat);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_DOUBLE_EQ(errors[0], 10.0);
  EXPECT_DOUBLE_EQ(errors[1], 25.0);
}

TEST(Metrics, ApeSkipsZeroTargets) {
  const std::vector<double> y = {0.0, 100.0};
  const std::vector<double> yhat = {5.0, 100.0};
  EXPECT_EQ(absolute_percentage_errors(y, yhat).size(), 1u);
}

TEST(Metrics, MdapeIsMedian) {
  const std::vector<double> y = {100.0, 100.0, 100.0};
  const std::vector<double> yhat = {101.0, 110.0, 150.0};
  EXPECT_DOUBLE_EQ(mdape(y, yhat), 10.0);
}

TEST(Metrics, MapeIsMean) {
  const std::vector<double> y = {100.0, 100.0};
  const std::vector<double> yhat = {110.0, 130.0};
  EXPECT_DOUBLE_EQ(mape(y, yhat), 20.0);
}

TEST(Metrics, PercentileApe) {
  std::vector<double> y(100, 100.0);
  std::vector<double> yhat(100);
  for (std::size_t i = 0; i < 100; ++i)
    yhat[i] = 100.0 + static_cast<double>(i);  // errors 0..99%.
  EXPECT_NEAR(percentile_ape(y, yhat, 95.0), 94.05, 0.01);
}

TEST(Metrics, PerfectPredictionZeroError) {
  const std::vector<double> y = {5.0, 10.0, 20.0};
  EXPECT_DOUBLE_EQ(mdape(y, y), 0.0);
  EXPECT_DOUBLE_EQ(rmse(y, y), 0.0);
}

TEST(Metrics, RmseKnownValue) {
  const std::vector<double> y = {0.0, 0.0};
  const std::vector<double> yhat = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(rmse(y, yhat), std::sqrt(12.5));
}

TEST(Metrics, SummaryQuantilesOrdered) {
  std::vector<double> y(200, 100.0);
  std::vector<double> yhat(200);
  for (std::size_t i = 0; i < 200; ++i)
    yhat[i] = 100.0 + static_cast<double>(i % 50);
  const auto summary = ape_summary(y, yhat);
  EXPECT_LE(summary.p5, summary.p50);
  EXPECT_LE(summary.p50, summary.p95);
  EXPECT_EQ(summary.count, 200u);
}

TEST(Metrics, SizeMismatchRejected) {
  const std::vector<double> y = {1.0, 2.0};
  const std::vector<double> yhat = {1.0};
  EXPECT_THROW(absolute_percentage_errors(y, yhat), xfl::ContractViolation);
}

TEST(Metrics, AllZeroTargetsRejected) {
  const std::vector<double> y = {0.0};
  const std::vector<double> yhat = {1.0};
  EXPECT_THROW(mdape(y, yhat), xfl::ContractViolation);
}

}  // namespace
}  // namespace xfl::ml
