#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/contracts.hpp"

namespace xfl::ml {
namespace {

TEST(Metrics, ApeBasics) {
  const std::vector<double> y = {100.0, 200.0};
  const std::vector<double> yhat = {110.0, 150.0};
  const auto errors = absolute_percentage_errors(y, yhat);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_DOUBLE_EQ(errors[0], 10.0);
  EXPECT_DOUBLE_EQ(errors[1], 25.0);
}

TEST(Metrics, ApeSkipsZeroTargets) {
  const std::vector<double> y = {0.0, 100.0};
  const std::vector<double> yhat = {5.0, 100.0};
  EXPECT_EQ(absolute_percentage_errors(y, yhat).size(), 1u);
}

TEST(Metrics, MdapeIsMedian) {
  const std::vector<double> y = {100.0, 100.0, 100.0};
  const std::vector<double> yhat = {101.0, 110.0, 150.0};
  EXPECT_DOUBLE_EQ(mdape(y, yhat), 10.0);
}

TEST(Metrics, MapeIsMean) {
  const std::vector<double> y = {100.0, 100.0};
  const std::vector<double> yhat = {110.0, 130.0};
  EXPECT_DOUBLE_EQ(mape(y, yhat), 20.0);
}

TEST(Metrics, PercentileApe) {
  std::vector<double> y(100, 100.0);
  std::vector<double> yhat(100);
  for (std::size_t i = 0; i < 100; ++i)
    yhat[i] = 100.0 + static_cast<double>(i);  // errors 0..99%.
  EXPECT_NEAR(percentile_ape(y, yhat, 95.0), 94.05, 0.01);
}

TEST(Metrics, PerfectPredictionZeroError) {
  const std::vector<double> y = {5.0, 10.0, 20.0};
  EXPECT_DOUBLE_EQ(mdape(y, y), 0.0);
  EXPECT_DOUBLE_EQ(rmse(y, y), 0.0);
}

TEST(Metrics, RmseKnownValue) {
  const std::vector<double> y = {0.0, 0.0};
  const std::vector<double> yhat = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(rmse(y, yhat), std::sqrt(12.5));
}

TEST(Metrics, SummaryQuantilesOrdered) {
  std::vector<double> y(200, 100.0);
  std::vector<double> yhat(200);
  for (std::size_t i = 0; i < 200; ++i)
    yhat[i] = 100.0 + static_cast<double>(i % 50);
  const auto summary = ape_summary(y, yhat);
  EXPECT_LE(summary.p5, summary.p50);
  EXPECT_LE(summary.p50, summary.p95);
  EXPECT_EQ(summary.count, 200u);
}

TEST(Metrics, SizeMismatchRejected) {
  const std::vector<double> y = {1.0, 2.0};
  const std::vector<double> yhat = {1.0};
  EXPECT_THROW(absolute_percentage_errors(y, yhat), xfl::ContractViolation);
}

TEST(Metrics, AllZeroTargetsRejected) {
  const std::vector<double> y = {0.0};
  const std::vector<double> yhat = {1.0};
  EXPECT_THROW(mdape(y, yhat), xfl::ContractViolation);
}

// --- Edge cases: the documented skip/throw contract of metrics.hpp ------

TEST(Metrics, EmptyInputYieldsEmptyApeVector) {
  const std::vector<double> none;
  EXPECT_TRUE(absolute_percentage_errors(none, none).empty());
}

TEST(Metrics, EmptyInputRejectedByAggregates) {
  const std::vector<double> none;
  EXPECT_THROW(mdape(none, none), xfl::ContractViolation);
  EXPECT_THROW(mape(none, none), xfl::ContractViolation);
  EXPECT_THROW(percentile_ape(none, none, 95.0), xfl::ContractViolation);
  EXPECT_THROW(ape_summary(none, none), xfl::ContractViolation);
  EXPECT_THROW(rmse(none, none), xfl::ContractViolation);
}

TEST(Metrics, SingleElementIsItsOwnMedianAndPercentile) {
  const std::vector<double> y = {100.0};
  const std::vector<double> yhat = {120.0};
  EXPECT_DOUBLE_EQ(mdape(y, yhat), 20.0);
  EXPECT_DOUBLE_EQ(mape(y, yhat), 20.0);
  EXPECT_DOUBLE_EQ(percentile_ape(y, yhat, 95.0), 20.0);
  EXPECT_DOUBLE_EQ(rmse(y, yhat), 20.0);
}

TEST(Metrics, NonFiniteSamplesSkipped) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // NaN target, NaN prediction, and infinite prediction all drop out;
  // only the clean last sample (10% error) survives.
  const std::vector<double> y = {nan, 100.0, 100.0, 100.0};
  const std::vector<double> yhat = {100.0, nan, inf, 110.0};
  const auto errors = absolute_percentage_errors(y, yhat);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_DOUBLE_EQ(errors[0], 10.0);
  EXPECT_DOUBLE_EQ(mdape(y, yhat), 10.0);
  EXPECT_DOUBLE_EQ(percentile_ape(y, yhat, 95.0), 10.0);
}

TEST(Metrics, AllSamplesNonFiniteRejected) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> y = {nan, nan};
  const std::vector<double> yhat = {1.0, 2.0};
  EXPECT_THROW(mdape(y, yhat), xfl::ContractViolation);
  EXPECT_THROW(ape_summary(y, yhat), xfl::ContractViolation);
}

TEST(Metrics, RmseDoesNotSkipNonFinite) {
  // rmse's contract is the opposite of the APE family: every sample
  // participates, so a NaN poisons the answer instead of being dropped.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> y = {nan, 100.0};
  const std::vector<double> yhat = {100.0, 100.0};
  EXPECT_TRUE(std::isnan(rmse(y, yhat)));
}

}  // namespace
}  // namespace xfl::ml
