#include "sim/resources.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace xfl::sim {
namespace {

TEST(ResourcePool, AddAndQuery) {
  ResourcePool pool;
  const auto id = pool.add("disk", 100.0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_DOUBLE_EQ(pool.capacity(id), 100.0);
  EXPECT_EQ(pool.name(id), "disk");
  pool.set_capacity(id, 50.0);
  EXPECT_DOUBLE_EQ(pool.capacity(id), 50.0);
}

TEST(ResourcePool, ContractChecks) {
  ResourcePool pool;
  EXPECT_THROW(pool.capacity(0), xfl::ContractViolation);
  EXPECT_THROW(pool.add("x", -1.0), xfl::ContractViolation);
}

TEST(MaxMin, EmptyFlows) {
  ResourcePool pool;
  pool.add("r", 10.0);
  EXPECT_TRUE(maxmin_allocate(pool, {}).empty());
}

TEST(MaxMin, LoneFlowGetsMinOfCapAndResources) {
  ResourcePool pool;
  const auto r1 = pool.add("a", 100.0);
  const auto r2 = pool.add("b", 60.0);
  FlowSpec flow;
  flow.usage = {{r1, 1.0, 1.0}, {r2, 1.0, 1.0}};
  flow.cap_Bps = 1000.0;
  EXPECT_DOUBLE_EQ(maxmin_allocate(pool, {flow})[0], 60.0);
  flow.cap_Bps = 25.0;
  EXPECT_DOUBLE_EQ(maxmin_allocate(pool, {flow})[0], 25.0);
}

TEST(MaxMin, EqualFlowsShareEqually) {
  ResourcePool pool;
  const auto r = pool.add("link", 90.0);
  FlowSpec flow;
  flow.usage = {{r, 1.0, 1.0}};
  const auto rates = maxmin_allocate(pool, {flow, flow, flow});
  for (const double rate : rates) EXPECT_DOUBLE_EQ(rate, 30.0);
}

TEST(MaxMin, WeightsSplitProportionally) {
  ResourcePool pool;
  const auto r = pool.add("link", 90.0);
  FlowSpec light, heavy;
  light.usage = {{r, 1.0, 1.0}};
  heavy.usage = {{r, 2.0, 1.0}};
  const auto rates = maxmin_allocate(pool, {light, heavy});
  EXPECT_DOUBLE_EQ(rates[0], 30.0);
  EXPECT_DOUBLE_EQ(rates[1], 60.0);
}

TEST(MaxMin, CappedFlowReleasesCapacity) {
  ResourcePool pool;
  const auto r = pool.add("link", 100.0);
  FlowSpec capped, open;
  capped.usage = {{r, 1.0, 1.0}};
  capped.cap_Bps = 10.0;
  open.usage = {{r, 1.0, 1.0}};
  const auto rates = maxmin_allocate(pool, {capped, open});
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 90.0);  // Max-min: unused share is reassigned.
}

TEST(MaxMin, MultiBottleneckClassicExample) {
  // Classic 3-flow example: flows A (link1), B (link1+link2), C (link2).
  // link1 cap 10, link2 cap 20 -> A=B=5 on link1; C gets 15 on link2.
  ResourcePool pool;
  const auto l1 = pool.add("l1", 10.0);
  const auto l2 = pool.add("l2", 20.0);
  FlowSpec a, b, c;
  a.usage = {{l1, 1.0, 1.0}};
  b.usage = {{l1, 1.0, 1.0}, {l2, 1.0, 1.0}};
  c.usage = {{l2, 1.0, 1.0}};
  const auto rates = maxmin_allocate(pool, {a, b, c});
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
  EXPECT_DOUBLE_EQ(rates[2], 15.0);
}

TEST(MaxMin, ConsumptionFactorScalesShareAndUse) {
  // A flow whose bytes cost 2x on the resource gets half the rate, and
  // feasibility accounts for the doubled consumption.
  ResourcePool pool;
  const auto cpu = pool.add("cpu", 100.0);
  FlowSpec expensive;
  expensive.usage = {{cpu, 1.0, 2.0}};
  EXPECT_DOUBLE_EQ(maxmin_allocate(pool, {expensive})[0], 50.0);
}

TEST(MaxMin, ZeroCapacityResourceStarvesFlow) {
  ResourcePool pool;
  const auto dead = pool.add("dead", 0.0);
  FlowSpec flow;
  flow.usage = {{dead, 1.0, 1.0}};
  EXPECT_DOUBLE_EQ(maxmin_allocate(pool, {flow})[0], 0.0);
}

TEST(MaxMin, FlowWithoutResourcesGetsCap) {
  ResourcePool pool;
  FlowSpec flow;
  flow.cap_Bps = 42.0;
  EXPECT_DOUBLE_EQ(maxmin_allocate(pool, {flow})[0], 42.0);
}

TEST(MaxMin, RejectsBadUsage) {
  ResourcePool pool;
  pool.add("r", 10.0);
  FlowSpec bad_weight;
  bad_weight.usage = {{0, 0.0, 1.0}};
  EXPECT_THROW(maxmin_allocate(pool, {bad_weight}), xfl::ContractViolation);
  FlowSpec bad_resource;
  bad_resource.usage = {{5, 1.0, 1.0}};
  EXPECT_THROW(maxmin_allocate(pool, {bad_resource}), xfl::ContractViolation);
}

// Property: for random instances, allocations are feasible (no resource
// oversubscribed), respect caps, and are non-negative; no flow with a
// positive cap and positive-capacity resources is starved.
class MaxMinRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinRandom, FeasibleAndPositive) {
  Rng rng(GetParam());
  ResourcePool pool;
  const std::size_t resource_count = 8;
  for (std::size_t r = 0; r < resource_count; ++r)
    pool.add("r" + std::to_string(r), rng.uniform(10.0, 1000.0));

  std::vector<FlowSpec> flows(30);
  for (auto& flow : flows) {
    const auto uses = static_cast<std::size_t>(rng.uniform_int(1, 4));
    for (std::size_t u = 0; u < uses; ++u) {
      ResourceUsage use;
      use.resource = static_cast<ResourceId>(
          rng.uniform_int(0, resource_count - 1));
      use.weight = rng.uniform(0.5, 16.0);
      use.consumption_factor = rng.uniform(1.0, 2.0);
      flow.usage.push_back(use);
    }
    flow.cap_Bps = rng.uniform(1.0, 2000.0);
  }

  const auto rates = maxmin_allocate(pool, flows);
  ASSERT_EQ(rates.size(), flows.size());

  std::vector<double> load(pool.size(), 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_GE(rates[f], 0.0);
    EXPECT_LE(rates[f], flows[f].cap_Bps * (1.0 + 1e-9));
    EXPECT_GT(rates[f], 0.0);  // All capacities positive here.
    for (const auto& use : flows[f].usage)
      load[use.resource] += rates[f] * use.consumption_factor;
  }
  for (std::size_t r = 0; r < pool.size(); ++r)
    EXPECT_LE(load[r], pool.capacity(static_cast<ResourceId>(r)) * (1.0 + 1e-9))
        << "resource " << r;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinRandom,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 5ULL, 8ULL, 13ULL,
                                           21ULL, 34ULL, 55ULL, 89ULL));

}  // namespace
}  // namespace xfl::sim
