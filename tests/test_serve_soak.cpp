// Soak and scale proof for the event-driven serve core: a thousand idle
// connections must cost zero threads and zero lost replies, while a
// saturating client pack hammers the hot path and a final pipelined
// drain shows stop() answers everything it admitted. This is the test
// the epoll rewrite exists to pass — the thread-per-connection design
// would sit at 1000+ threads here.
//
// Tagged tier2-serve-soak: part of the serve suite but greppable on its
// own (ctest -L soak). Sizes shrink under sanitizers, whose shadow
// memory and interceptors make 1k sockets needlessly slow.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/units.hpp"
#include "core/predictor.hpp"
#include "serve/client.hpp"
#include "serve/model_host.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/scenario.hpp"

namespace xfl::serve {
namespace {

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

constexpr std::size_t kIdleConnections = kSanitized ? 200 : 1000;
constexpr std::size_t kSaturatingClients = kSanitized ? 16 : 64;
constexpr double kSaturateSeconds = kSanitized ? 1.0 : 2.0;

std::shared_ptr<const core::TransferPredictor> shared_predictor() {
  static const auto predictor = [] {
    sim::EsnetConfig config;
    config.transfers = 400;
    config.duration_s = 86400.0;
    config.seed = 29;
    const auto log = sim::make_esnet_testbed(config).run().log;
    core::TransferPredictor::Options options;
    options.min_edge_transfers = 50;
    options.gbt.trees = 10;
    auto fitted = std::make_shared<core::TransferPredictor>(options);
    fitted->fit(log);
    return std::shared_ptr<const core::TransferPredictor>(fitted);
  }();
  return predictor;
}

/// Threads of this process, from /proc/self/status. The scale probe: an
/// event-driven server must not grow this with connection count.
int process_thread_count() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line))
    if (line.rfind("Threads:", 0) == 0)
      return std::stoi(line.substr(sizeof("Threads:") - 1));
  return -1;
}

core::PlannedTransfer sample_transfer(std::size_t i) {
  core::PlannedTransfer planned;
  planned.src = 0;
  planned.dst = 1;
  planned.bytes = (1.0 + static_cast<double>(i % 40)) * kGB;
  planned.files = 1 + i % 30;
  planned.concurrency = static_cast<std::uint32_t>(1 + i % 8);
  planned.parallelism = static_cast<std::uint32_t>(1 + (i * 3) % 8);
  return planned;
}

TEST(ServeSoak, ThousandIdleConnectionsCostNoThreadsAndNoReplies) {
  ModelHost host(shared_predictor());
  PredictionServer server(host, {.max_batch = 64,
                                 .queue_capacity = 1024,
                                 .monitor = {}});
  server.start();
  const int threads_after_start = process_thread_count();
  ASSERT_GT(threads_after_start, 0);

  // Phase 1: park a thousand idle connections on the event loop.
  std::vector<std::unique_ptr<PredictionClient>> idle;
  idle.reserve(kIdleConnections);
  for (std::size_t i = 0; i < kIdleConnections; ++i)
    idle.push_back(
        std::make_unique<PredictionClient>("127.0.0.1", server.port()));
  // The poll thread registers accepted fds asynchronously; connect()
  // returning only proves the kernel queued them.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.connection_count() < kIdleConnections &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(server.connection_count(), kIdleConnections);

  // The headline assertion: a thousand open sockets, zero new threads.
  EXPECT_EQ(process_thread_count(), threads_after_start);

  // Phase 2: saturate alongside the idle herd. Every predict() below is
  // a blocking round trip, so "zero lost replies" holds by construction
  // if and only if no call throws and none comes back failed.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  std::vector<std::thread> saturators;
  saturators.reserve(kSaturatingClients);
  for (std::size_t c = 0; c < kSaturatingClients; ++c) {
    saturators.emplace_back([&, c] {
      try {
        PredictionClient client("127.0.0.1", server.port());
        if (c % 2 == 0) client.negotiate_binary();  // Mixed protocols.
        std::size_t i = c;
        while (!stop.load(std::memory_order_relaxed)) {
          const auto reply = client.predict(sample_transfer(i++));
          if (reply.ok)
            completed.fetch_add(1, std::memory_order_relaxed);
          else
            failed.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const std::exception&) {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(kSaturateSeconds));
  // Under saturation the server may run client threads + shard workers,
  // but never a thread per connection: the ceiling is the thread count
  // at start plus our own saturator threads.
  const int threads_under_load = process_thread_count();
  EXPECT_LE(threads_under_load,
            threads_after_start + static_cast<int>(kSaturatingClients))
      << "server grew threads with connection count";
  stop.store(true);
  for (auto& thread : saturators) thread.join();

  EXPECT_EQ(failed.load(), 0u);
  EXPECT_GT(completed.load(), kSaturatingClients)  // Everyone made progress.
      << "saturating clients starved by the idle herd";

  // Phase 3: idle connections survived the storm — each one still works.
  for (std::size_t i = 0; i < kIdleConnections; i += 100) {
    const auto reply = idle[i]->predict(sample_transfer(i));
    EXPECT_TRUE(reply.ok);
  }

  // Phase 4: pipelined drain. Pause the batcher, pipeline requests so
  // they are all admitted and queued, then stop(): every admitted
  // request must be answered before the socket closes.
  server.batcher().pause();
  PredictionClient drain_client("127.0.0.1", server.port());
  constexpr int kPipelined = 8;
  for (int i = 0; i < kPipelined; ++i)
    drain_client.send_line(
        predict_request_line("drain-" + std::to_string(i),
                             sample_transfer(static_cast<std::size_t>(i))));
  while (server.batcher().queue_depth() < kPipelined)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::thread stopper([&] { server.stop(); });
  std::set<std::string> answered;
  for (int i = 0; i < kPipelined; ++i) {
    const auto reply = PredictionClient::parse_reply(drain_client.read_line());
    EXPECT_TRUE(reply.ok) << reply.error;
    answered.insert(reply.id);
  }
  stopper.join();
  EXPECT_EQ(answered.size(), static_cast<std::size_t>(kPipelined));
}

}  // namespace
}  // namespace xfl::serve
