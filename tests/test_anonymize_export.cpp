#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <tuple>

#include "common/rng.hpp"
#include "features/contention.hpp"
#include "features/dataset.hpp"
#include "logs/anonymize.hpp"

namespace xfl {
namespace {

logs::LogStore sample_log() {
  logs::LogStore log;
  Rng rng(3);
  for (std::uint64_t i = 1; i <= 40; ++i) {
    logs::TransferRecord r;
    r.id = i * 7;  // Non-sequential ids.
    r.src = static_cast<endpoint::EndpointId>(10 + rng.uniform_int(0, 3));
    r.dst = static_cast<endpoint::EndpointId>(20 + rng.uniform_int(0, 3));
    r.start_s = 1.0e6 + rng.uniform(0.0, 5000.0);
    r.end_s = r.start_s + rng.uniform(5.0, 300.0);
    r.bytes = rng.uniform(1e8, 1e11);
    r.files = 1 + static_cast<std::uint64_t>(rng.uniform_int(0, 99));
    r.dirs = 1;
    r.concurrency = 4;
    r.parallelism = 2;
    r.faults = i % 5 == 0 ? 2 : 0;
    log.append(r);
  }
  return log;
}

TEST(Anonymize, TimesShiftedToZeroOrigin) {
  const auto original = sample_log();
  const auto anonymized = logs::anonymize(original, 99);
  double earliest = 1e30;
  for (const auto& r : anonymized.log.records())
    earliest = std::min(earliest, r.start_s);
  EXPECT_DOUBLE_EQ(earliest, 0.0);
  EXPECT_GT(anonymized.time_shift_s, 0.0);
}

TEST(Anonymize, DurationsRatesAndPayloadPreserved) {
  const auto original = sample_log();
  const auto anonymized = logs::anonymize(original, 99);
  ASSERT_EQ(anonymized.log.size(), original.size());
  // Anonymised records are re-ordered by start time; compare multisets of
  // (duration, bytes, files, faults).
  auto signature = [](const logs::LogStore& log) {
    std::multiset<std::tuple<double, double, std::uint64_t, std::uint32_t>> s;
    for (const auto& r : log.records())
      s.insert({r.duration_s(), r.bytes, r.files, r.faults});
    return s;
  };
  EXPECT_EQ(signature(original), signature(anonymized.log));
}

TEST(Anonymize, EndpointMappingConsistentAndDense) {
  const auto original = sample_log();
  const auto anonymized = logs::anonymize(original, 5);
  // All mapped ids are dense in [0, n_endpoints).
  std::set<endpoint::EndpointId> mapped;
  for (const auto& [from, to] : anonymized.endpoint_mapping) mapped.insert(to);
  EXPECT_EQ(mapped.size(), anonymized.endpoint_mapping.size());
  EXPECT_EQ(*mapped.rbegin(),
            static_cast<endpoint::EndpointId>(mapped.size() - 1));
  // The same original endpoint always maps to the same opaque id.
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto& scrubbed = anonymized.log;
    (void)scrubbed;
  }
}

TEST(Anonymize, EdgeStructurePreserved) {
  const auto original = sample_log();
  const auto anonymized = logs::anonymize(original, 7);
  // Per-edge transfer counts survive the remap (edges keep their sizes).
  std::multiset<std::size_t> before, after;
  for (const auto& edge : original.edges_by_usage())
    before.insert(original.edge_count(edge));
  for (const auto& edge : anonymized.log.edges_by_usage())
    after.insert(anonymized.log.edge_count(edge));
  EXPECT_EQ(before, after);
}

TEST(Anonymize, DifferentSaltsDifferentMappings) {
  const auto original = sample_log();
  const auto a = logs::anonymize(original, 1);
  const auto b = logs::anonymize(original, 2);
  EXPECT_NE(a.endpoint_mapping, b.endpoint_mapping);
  // Same salt: identical output (release reproducibility).
  const auto a2 = logs::anonymize(original, 1);
  EXPECT_EQ(a.endpoint_mapping, a2.endpoint_mapping);
}

TEST(Anonymize, IdsRenumberedSequentially) {
  const auto anonymized = logs::anonymize(sample_log(), 11);
  std::uint64_t expected = 1;
  for (const auto& r : anonymized.log.records()) EXPECT_EQ(r.id, expected++);
}

TEST(Anonymize, EmptyLog) {
  logs::LogStore empty;
  const auto anonymized = logs::anonymize(empty, 1);
  EXPECT_TRUE(anonymized.log.empty());
  EXPECT_TRUE(anonymized.endpoint_mapping.empty());
}

TEST(Anonymize, ContentionFeaturesInvariant) {
  // The features the models consume must be identical before and after
  // anonymisation (overlap structure is untouched).
  const auto original = sample_log();
  const auto anonymized = logs::anonymize(original, 123);
  const auto before = features::compute_contention(original);
  const auto after = features::compute_contention(anonymized.log);
  // Compare as multisets of rounded feature tuples (order changed).
  auto signature = [](const std::vector<features::ContentionFeatures>& f) {
    std::multiset<std::tuple<long, long, long, long>> s;
    for (const auto& c : f)
      s.insert({std::lround(c.k_sout), std::lround(c.k_din),
                std::lround(c.g_src * 1000), std::lround(c.s_dout * 1000)});
    return s;
  };
  EXPECT_EQ(signature(before), signature(after));
}

TEST(DatasetCsv, RoundTripPreservesEverything) {
  const auto log = sample_log();
  const auto contention = features::compute_contention(log);
  features::DatasetOptions options;
  options.load_threshold = 0.0;
  const auto edge = log.edges_by_usage().front();
  const auto dataset = features::build_edge_dataset(log, contention, edge, options);

  std::stringstream buffer;
  features::write_dataset_csv(dataset, buffer);
  const auto loaded = features::read_dataset_csv(buffer);

  ASSERT_EQ(loaded.rows(), dataset.rows());
  ASSERT_EQ(loaded.cols(), dataset.cols());
  EXPECT_EQ(loaded.feature_names, dataset.feature_names);
  for (std::size_t r = 0; r < dataset.rows(); ++r) {
    EXPECT_DOUBLE_EQ(loaded.y[r], dataset.y[r]);
    for (std::size_t c = 0; c < dataset.cols(); ++c)
      EXPECT_DOUBLE_EQ(loaded.x.at(r, c), dataset.x.at(r, c));
  }
}

TEST(DatasetCsv, RejectsMalformedInput) {
  std::stringstream empty("");
  EXPECT_THROW(features::read_dataset_csv(empty), std::runtime_error);
  std::stringstream bad_header("a,b\n1,2\n");
  EXPECT_THROW(features::read_dataset_csv(bad_header), std::runtime_error);
  std::stringstream ragged("a,rate_mbps\n1\n");
  EXPECT_THROW(features::read_dataset_csv(ragged), std::runtime_error);
}

}  // namespace
}  // namespace xfl
