#include "ml/gbt.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "ml/linreg.hpp"
#include "ml/metrics.hpp"

namespace xfl::ml {
namespace {

/// Deterministic synthetic regression datasets.
struct Synthetic {
  Matrix x;
  std::vector<double> y;
};

Synthetic make_step(std::size_t n, std::uint64_t seed) {
  // Ten distinct x values (fewer than the histogram bin budget, so the
  // 0.5 boundary is exactly representable as a split candidate).
  Rng rng(seed);
  Synthetic data;
  data.x = Matrix(n, 1);
  data.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(rng.uniform_int(0, 9)) / 10.0;
    data.x.at(i, 0) = v;
    data.y[i] = v < 0.5 ? 1.0 : 5.0;
  }
  return data;
}

Synthetic make_nonlinear(std::size_t n, std::uint64_t seed, double noise = 0.0) {
  Rng rng(seed);
  Synthetic data;
  data.x = Matrix(n, 3);
  data.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-2.0, 2.0);
    const double b = rng.uniform(-2.0, 2.0);
    const double c = rng.uniform(-2.0, 2.0);
    data.x.at(i, 0) = a;
    data.x.at(i, 1) = b;
    data.x.at(i, 2) = c;
    data.y[i] = a * a + 3.0 * std::sin(b) + 0.5 * c + rng.normal(0.0, noise);
  }
  return data;
}

TEST(Gbt, FitsStepFunctionExactly) {
  const auto data = make_step(400, 1);
  GbtConfig config;
  config.trees = 60;
  config.learning_rate = 0.3;
  config.subsample = 1.0;
  config.colsample = 1.0;
  GradientBoostedTrees model(config);
  model.fit(data.x, data.y);
  for (std::size_t i = 0; i < data.y.size(); ++i)
    EXPECT_NEAR(model.predict(data.x.row(i)), data.y[i], 0.2);
}

TEST(Gbt, TrainingErrorDecreasesWithMoreTrees) {
  const auto data = make_nonlinear(600, 2);
  double previous_rmse = 1e18;
  for (const int trees : {5, 40, 200}) {
    GbtConfig config;
    config.trees = trees;
    GradientBoostedTrees model(config);
    model.fit(data.x, data.y);
    const auto predictions = model.predict(data.x);
    const double error = rmse(data.y, predictions);
    EXPECT_LT(error, previous_rmse);
    previous_rmse = error;
  }
}

TEST(Gbt, BeatsLinearModelOnNonlinearTarget) {
  const auto train = make_nonlinear(1500, 3, 0.05);
  const auto test = make_nonlinear(400, 4, 0.05);

  GradientBoostedTrees boosted;
  boosted.fit(train.x, train.y);
  LinearRegression linear;
  linear.fit(train.x, train.y);

  const double boosted_rmse = rmse(test.y, boosted.predict(test.x));
  const double linear_rmse = rmse(test.y, linear.predict(test.x));
  EXPECT_LT(boosted_rmse, 0.6 * linear_rmse);
}

TEST(Gbt, GeneralisesOnHeldOut) {
  const auto train = make_nonlinear(2000, 5, 0.1);
  const auto test = make_nonlinear(500, 6, 0.1);
  GradientBoostedTrees model;
  model.fit(train.x, train.y);
  // Target spread is ~4; a useful model is far below that.
  EXPECT_LT(rmse(test.y, model.predict(test.x)), 0.8);
}

TEST(Gbt, ConstantTargetPredictsConstant) {
  Matrix x(50, 2);
  Rng rng(7);
  for (std::size_t i = 0; i < 50; ++i) {
    x.at(i, 0) = rng.uniform();
    x.at(i, 1) = rng.uniform();
  }
  const std::vector<double> y(50, 3.5);
  GradientBoostedTrees model;
  model.fit(x, y);
  EXPECT_NEAR(model.predict(x.row(0)), 3.5, 1e-9);
}

TEST(Gbt, ConstantFeaturesHandled) {
  Matrix x(100, 2);
  std::vector<double> y(100);
  Rng rng(8);
  for (std::size_t i = 0; i < 100; ++i) {
    x.at(i, 0) = 1.0;  // Constant column (like C/P per edge).
    x.at(i, 1) = rng.uniform();
    y[i] = 2.0 * x.at(i, 1);
  }
  GradientBoostedTrees model;
  model.fit(x, y);
  const auto importance = model.feature_importance();
  EXPECT_DOUBLE_EQ(importance[0], 0.0);  // Constant feature never splits.
  EXPECT_DOUBLE_EQ(importance[1], 1.0);
  EXPECT_NEAR(model.predict(x.row(3)), y[3], 0.3);
}

TEST(Gbt, ImportanceIdentifiesInformativeFeature) {
  Rng rng(9);
  Matrix x(800, 4);
  std::vector<double> y(800);
  for (std::size_t i = 0; i < 800; ++i) {
    for (std::size_t c = 0; c < 4; ++c) x.at(i, c) = rng.normal();
    y[i] = 10.0 * x.at(i, 2);  // Only feature 2 matters.
  }
  GradientBoostedTrees model;
  model.fit(x, y);
  const auto importance = model.feature_importance();
  EXPECT_DOUBLE_EQ(importance[2], 1.0);
  for (const std::size_t c : {0u, 1u, 3u})
    EXPECT_LT(importance[c], 0.05) << "feature " << c;
}

TEST(Gbt, DeterministicGivenSeed) {
  const auto data = make_nonlinear(300, 10);
  GbtConfig config;
  config.seed = 77;
  GradientBoostedTrees a(config), b(config);
  a.fit(data.x, data.y);
  b.fit(data.x, data.y);
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(a.predict(data.x.row(i)), b.predict(data.x.row(i)));
}

TEST(Gbt, PredictBeforeFitRejected) {
  GradientBoostedTrees model;
  const std::vector<double> features = {1.0};
  EXPECT_THROW(model.predict(features), xfl::ContractViolation);
}

TEST(Gbt, InvalidConfigRejected) {
  GbtConfig config;
  config.trees = 0;
  EXPECT_THROW(GradientBoostedTrees{config}, xfl::ContractViolation);
  config = {};
  config.learning_rate = -0.1;
  EXPECT_THROW(GradientBoostedTrees{config}, xfl::ContractViolation);
}

TEST(Gbt, WidthMismatchRejectedAtPredict) {
  const auto data = make_step(100, 11);
  GradientBoostedTrees model;
  model.fit(data.x, data.y);
  const std::vector<double> wrong = {1.0, 2.0};
  EXPECT_THROW(model.predict(wrong), xfl::ContractViolation);
}

TEST(Gbt, SaveLoadRoundTripPredictsIdentically) {
  const auto data = make_nonlinear(500, 20, 0.05);
  GradientBoostedTrees model;
  model.fit(data.x, data.y);
  std::stringstream buffer;
  model.save(buffer);
  const auto loaded = GradientBoostedTrees::load(buffer);
  ASSERT_TRUE(loaded.fitted());
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(loaded.predict(data.x.row(i)), model.predict(data.x.row(i)));
  // Importances survive too.
  EXPECT_EQ(loaded.feature_importance(), model.feature_importance());
}

TEST(Gbt, SaveRequiresFit) {
  GradientBoostedTrees model;
  std::stringstream buffer;
  EXPECT_THROW(model.save(buffer), xfl::ContractViolation);
}

TEST(Gbt, LoadRejectsGarbage) {
  std::stringstream bad("not-a-model 1 2 3");
  EXPECT_THROW(GradientBoostedTrees::load(bad), std::runtime_error);
  std::stringstream truncated("xfl-gbt-v1\n3 0.08 1.5\n3 0 0 0\n5\n");
  EXPECT_THROW(GradientBoostedTrees::load(truncated), std::runtime_error);
}

// A syntactically well-formed model whose node links or counts are
// corrupted must throw rather than produce a predictor that reads out of
// bounds or loops forever.
TEST(Gbt, LoadRejectsMalformedStructure) {
  // Template: 2 features, no importance block, 1 tree, 3 nodes; node 0
  // splits on feature 0 with children 1 and 2.
  auto model_text = [](const std::string& nodes) {
    return "xfl-gbt-v1\n2 0.1 1.5\n0\n1\n3\n" + nodes;
  };
  // Split feature out of range.
  std::stringstream bad_feature(model_text(
      "7 0.5 0 1 2\n-1 0 1.0 -1 -1\n-1 0 2.0 -1 -1\n"));
  EXPECT_THROW(GradientBoostedTrees::load(bad_feature), std::runtime_error);
  // Child pointing backwards (cycle).
  std::stringstream cycle(model_text(
      "0 0.5 0 0 2\n-1 0 1.0 -1 -1\n-1 0 2.0 -1 -1\n"));
  EXPECT_THROW(GradientBoostedTrees::load(cycle), std::runtime_error);
  // Child index past the node list.
  std::stringstream oob(model_text(
      "0 0.5 0 1 9\n-1 0 1.0 -1 -1\n-1 0 2.0 -1 -1\n"));
  EXPECT_THROW(GradientBoostedTrees::load(oob), std::runtime_error);
  // A node naming the same child twice (left == right).
  std::stringstream twin(model_text(
      "0 0.5 0 1 1\n-1 0 1.0 -1 -1\n-1 0 2.0 -1 -1\n"));
  EXPECT_THROW(GradientBoostedTrees::load(twin), std::runtime_error);
  // Two parents sharing a child: a DAG, not a tree. Structurally walkable,
  // but flattening a DAG duplicates subtrees without bound — reject it.
  std::stringstream dag(
      "xfl-gbt-v1\n2 0.1 1.5\n0\n1\n5\n"
      "0 0.5 0 1 2\n1 0.5 0 3 4\n1 0.5 0 3 4\n"
      "-1 0 1.0 -1 -1\n-1 0 2.0 -1 -1\n");
  EXPECT_THROW(GradientBoostedTrees::load(dag), std::runtime_error);
  // Importance block sized unlike the feature count.
  std::stringstream bad_importance(
      "xfl-gbt-v1\n2 0.1 1.5\n3 1 1 1\n1\n1\n-1 0 1.0 -1 -1\n");
  EXPECT_THROW(GradientBoostedTrees::load(bad_importance), std::runtime_error);
  // Zero features.
  std::stringstream no_features(
      "xfl-gbt-v1\n0 0.1 1.5\n0\n1\n1\n-1 0 1.0 -1 -1\n");
  EXPECT_THROW(GradientBoostedTrees::load(no_features), std::runtime_error);
  // Non-positive learning rate.
  std::stringstream bad_rate(
      "xfl-gbt-v1\n2 0 1.5\n0\n1\n1\n-1 0 1.0 -1 -1\n");
  EXPECT_THROW(GradientBoostedTrees::load(bad_rate), std::runtime_error);
  // The template itself is sound: the valid variant loads and predicts.
  std::stringstream good(model_text(
      "0 0.5 0 1 2\n-1 0 1.0 -1 -1\n-1 0 2.0 -1 -1\n"));
  const auto model = GradientBoostedTrees::load(good);
  const std::vector<double> low{0.0, 0.0};
  EXPECT_DOUBLE_EQ(model.predict(low), 1.5 + 0.1 * 1.0);
}

// Models saved without an importance block (count 0) are valid; asking for
// importances must return empty instead of reducing an empty range.
TEST(Gbt, EmptyImportanceBlockYieldsEmptyImportances) {
  std::stringstream stripped(
      "xfl-gbt-v1\n2 0.1 1.5\n0\n1\n1\n-1 0 1.0 -1 -1\n");
  const auto model = GradientBoostedTrees::load(stripped);
  ASSERT_TRUE(model.fitted());
  EXPECT_TRUE(model.feature_importance().empty());
}

// ------------------------------------------------------- weighted fitting
// Integer multiplicity weights (the retrain worker's quantised recency
// decay). The invariant the weighted path must preserve: hessian sums
// stay exact integer counts, so the division-free split scan is intact.

TEST(Gbt, AllOnesWeightsMatchUnweightedBitForBit) {
  const auto data = make_nonlinear(500, 21);
  GbtConfig config;
  config.trees = 50;
  GradientBoostedTrees unweighted(config);
  unweighted.fit(data.x, data.y);
  GradientBoostedTrees weighted(config);
  const std::vector<std::uint32_t> ones(data.y.size(), 1);
  weighted.fit(data.x, data.y, ones);
  // All-ones weights walk the identical unweighted code values (same
  // histograms, same gradients, same leaves): EXPECT_EQ, not NEAR.
  const auto a = unweighted.predict(data.x);
  const auto b = weighted.predict(data.x);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Gbt, WeightedFitApproximatesRowReplication) {
  // Weight w on a row must act like w copies of that row. The histogram
  // counts and split structure agree exactly; only the floating-point
  // accumulation order differs (w*g in one multiply vs w additions), so
  // the comparison is NEAR, not EQ.
  const auto base = make_nonlinear(240, 22);
  std::vector<std::uint32_t> weights(base.y.size());
  for (std::size_t i = 0; i < weights.size(); ++i)
    weights[i] = static_cast<std::uint32_t>(1 + i % 4);

  std::size_t total = 0;
  for (const auto w : weights) total += w;
  Synthetic replicated;
  replicated.x = Matrix(total, base.x.cols());
  std::size_t row = 0;
  for (std::size_t i = 0; i < base.y.size(); ++i) {
    for (std::uint32_t copy = 0; copy < weights[i]; ++copy, ++row) {
      for (std::size_t c = 0; c < base.x.cols(); ++c)
        replicated.x.at(row, c) = base.x.at(i, c);
      replicated.y.push_back(base.y[i]);
    }
  }

  GbtConfig config;
  config.trees = 40;
  config.subsample = 1.0;  // Row sampling permutes differently across the
  config.colsample = 1.0;  // two row counts; disable it for the claim.
  GradientBoostedTrees weighted(config);
  weighted.fit(base.x, base.y, weights);
  GradientBoostedTrees cloned(config);
  cloned.fit(replicated.x, replicated.y);

  const auto wp = weighted.predict(base.x);
  for (std::size_t i = 0; i < base.y.size(); ++i)
    EXPECT_NEAR(wp[i], cloned.predict(base.x.row(i)),
                1e-6 * (1.0 + std::abs(wp[i])));
}

TEST(Gbt, WeightsPullTheFitTowardHeavyRows) {
  // Two clusters with conflicting targets at the same x: the fitted value
  // lands at the weighted mean, so up-weighting one side must move
  // predictions toward it.
  constexpr std::size_t kN = 200;
  Synthetic data;
  data.x = Matrix(kN, 1);
  data.y.resize(kN);
  std::vector<std::uint32_t> weights(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    data.x.at(i, 0) = 1.0;
    const bool heavy = i % 2 == 0;
    data.y[i] = heavy ? 10.0 : 2.0;
    weights[i] = heavy ? 9 : 1;
  }
  GbtConfig config;
  config.trees = 30;
  config.subsample = 1.0;
  GradientBoostedTrees model(config);
  model.fit(data.x, data.y, weights);
  const double prediction = model.predict(std::vector<double>{1.0});
  // Weighted mean is (9*10 + 1*2)/10 = 9.2; unweighted would sit at 6.
  EXPECT_NEAR(prediction, 9.2, 0.2);
  EXPECT_GT(prediction, 8.0);
}

TEST(Gbt, WeightedFitContractViolations) {
  const auto data = make_nonlinear(50, 23);
  GbtConfig config;
  config.trees = 5;
  {
    GradientBoostedTrees model(config);
    const std::vector<std::uint32_t> short_weights(data.y.size() - 1, 1);
    EXPECT_THROW(model.fit(data.x, data.y, short_weights), ContractViolation);
  }
  {
    GradientBoostedTrees model(config);
    std::vector<std::uint32_t> zero(data.y.size(), 1);
    zero[7] = 0;  // A zero weight silently dropping a row is a caller bug.
    EXPECT_THROW(model.fit(data.x, data.y, zero), ContractViolation);
  }
}

// Hyperparameter sweep: fits remain sane across depths and subsampling.
class GbtSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(GbtSweep, ReasonableFitAcrossHyperparameters) {
  const auto [depth, subsample] = GetParam();
  const auto train = make_nonlinear(800, 12, 0.05);
  const auto test = make_nonlinear(200, 13, 0.05);
  GbtConfig config;
  config.max_depth = depth;
  config.subsample = subsample;
  GradientBoostedTrees model(config);
  model.fit(train.x, train.y);
  EXPECT_LT(rmse(test.y, model.predict(test.x)), 1.2);
}

INSTANTIATE_TEST_SUITE_P(Grid, GbtSweep,
                         ::testing::Combine(::testing::Values(2, 4, 6),
                                            ::testing::Values(0.6, 1.0)));

}  // namespace
}  // namespace xfl::ml
