// Integration tests across modules: simulate -> analyze -> model. These are
// the paper's §5 pipeline exercised end-to-end on a small ESnet workload.
#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "core/edge_model.hpp"
#include "core/global_model.hpp"
#include "core/pipeline.hpp"
#include "core/threshold_study.hpp"
#include "sim/scenario.hpp"

namespace xfl::core {
namespace {

/// One shared simulated log for the whole suite (sim + contention sweep is
/// the expensive part).
const AnalysisContext& shared_context() {
  static const AnalysisContext context = [] {
    sim::EsnetConfig config;
    config.transfers = 2500;
    config.duration_s = 4.0 * 86400.0;
    config.seed = 7;
    return analyze_log(sim::make_esnet_testbed(config).run().log);
  }();
  return context;
}

EdgeModelConfig fast_config() {
  EdgeModelConfig config;
  config.gbt.trees = 80;
  return config;
}

TEST(Pipeline, ContextAligned) {
  const auto& context = shared_context();
  EXPECT_GT(context.log.size(), 2000u);
  EXPECT_EQ(context.contention.size(), context.log.size());
  EXPECT_EQ(context.capabilities.size(), 4u);  // Four testbed endpoints.
}

TEST(Pipeline, CapabilitiesAtLeastObservedRates) {
  const auto& context = shared_context();
  for (const auto& [endpoint, capability] : context.capabilities) {
    EXPECT_GE(capability.ro_max_Bps, capability.dr_max_Bps);
    EXPECT_GE(capability.ri_max_Bps, capability.dw_max_Bps);
    EXPECT_GT(capability.dr_max_Bps, 0.0);
  }
}

TEST(Pipeline, HeavyEdgeSelectionRespectsThresholdCount) {
  const auto& context = shared_context();
  const auto edges = select_heavy_edges(context, 100, 0.5, 0);
  EXPECT_FALSE(edges.empty());
  for (const auto& edge : edges) {
    const double cutoff = 0.5 * context.log.edge_max_rate(edge);
    std::size_t qualifying = 0;
    for (const auto i : context.log.edge_transfers(edge))
      if (context.log[i].rate_Bps() >= cutoff) ++qualifying;
    EXPECT_GE(qualifying, 100u);
  }
}

TEST(Pipeline, MaxEdgesTruncates) {
  const auto& context = shared_context();
  EXPECT_LE(select_heavy_edges(context, 50, 0.5, 3).size(), 3u);
}

TEST(EdgeModel, StudyProducesCompleteReport) {
  const auto& context = shared_context();
  const auto edges = select_heavy_edges(context, 100, 0.5, 1);
  ASSERT_FALSE(edges.empty());
  const auto report = study_edge(context, edges[0], fast_config());
  EXPECT_GE(report.samples, 100u);
  EXPECT_EQ(report.feature_names.size(), 16u);
  EXPECT_EQ(report.eliminated.size(), 16u);
  EXPECT_EQ(report.lr_coefficients.size(), 16u);
  EXPECT_EQ(report.xgb_importance.size(), 16u);
  EXPECT_GT(report.lr_mdape, 0.0);
  EXPECT_GT(report.xgb_mdape, 0.0);
  EXPECT_LT(report.xgb_mdape, 60.0);
}

TEST(EdgeModel, TunablesEliminatedForLowVariance) {
  // The ESnet workload uses fixed C=4, P=4 (tiny deviation rate), so the
  // study must cross them out, as the paper does in Fig. 9.
  const auto& context = shared_context();
  const auto edges = select_heavy_edges(context, 100, 0.5, 2);
  ASSERT_FALSE(edges.empty());
  const auto report = study_edge(context, edges[0], fast_config());
  // Columns 2 and 3 are C and P.
  EXPECT_TRUE(report.eliminated[2]);
  EXPECT_TRUE(report.eliminated[3]);
}

TEST(EdgeModel, CoefficientsScaledToUnitMax) {
  const auto& context = shared_context();
  const auto edges = select_heavy_edges(context, 100, 0.5, 1);
  ASSERT_FALSE(edges.empty());
  const auto report = study_edge(context, edges[0], fast_config());
  double max_coefficient = 0.0;
  for (const double c : report.lr_coefficients) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    max_coefficient = std::max(max_coefficient, c);
  }
  EXPECT_DOUBLE_EQ(max_coefficient, 1.0);
}

TEST(EdgeModel, NonlinearBeatsLinearOnMostEdges) {
  // The paper's core result (Fig. 11): XGB <= LR MdAPE on most edges.
  const auto& context = shared_context();
  const auto edges = select_heavy_edges(context, 80, 0.5, 6);
  ASSERT_GE(edges.size(), 3u);
  const auto reports = study_edges(context, edges, fast_config());
  std::size_t xgb_wins = 0;
  for (const auto& report : reports)
    if (report.xgb_mdape <= report.lr_mdape) ++xgb_wins;
  EXPECT_GE(2 * xgb_wins, reports.size());  // Wins at least half.
}

TEST(EdgeModel, ParallelStudyMatchesSerial) {
  const auto& context = shared_context();
  const auto edges = select_heavy_edges(context, 80, 0.5, 3);
  ASSERT_FALSE(edges.empty());
  ThreadPool pool(2);
  const auto serial = study_edges(context, edges, fast_config());
  const auto parallel = study_edges(context, edges, fast_config(), &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].lr_mdape, parallel[i].lr_mdape);
    EXPECT_DOUBLE_EQ(serial[i].xgb_mdape, parallel[i].xgb_mdape);
  }
}

TEST(GlobalModel, PooledModelTrainsAndEvaluates) {
  const auto& context = shared_context();
  const auto edges = select_heavy_edges(context, 100, 0.5, 0);
  ASSERT_GE(edges.size(), 2u);
  GlobalModelConfig config;
  config.gbt.trees = 80;
  const auto report = study_global_model(context, edges, config);
  EXPECT_GT(report.samples, 200u);
  EXPECT_EQ(report.edges, edges.size());
  EXPECT_GT(report.lr_mdape, 0.0);
  EXPECT_GT(report.xgb_mdape, 0.0);
  // §5.4's shape: the pooled nonlinear model is far better than pooled LR.
  EXPECT_LT(report.xgb_mdape, report.lr_mdape);
  // On the 4-endpoint testbed the capability columns are near-constant and
  // may be variance-eliminated; the surviving feature list is never empty.
  EXPECT_FALSE(report.feature_names.empty());
}

TEST(GlobalModel, CapabilityAblationSupported) {
  const auto& context = shared_context();
  const auto edges = select_heavy_edges(context, 100, 0.5, 0);
  GlobalModelConfig config;
  config.gbt.trees = 60;
  config.without_capability_features = true;
  const auto report = study_global_model(context, edges, config);
  for (const auto& name : report.feature_names) {
    EXPECT_NE(name, "ROmax_src");
    EXPECT_NE(name, "RImax_dst");
  }
}

TEST(ThresholdStudy, SeriesShapesConsistent) {
  const auto& context = shared_context();
  ThresholdStudyConfig config;
  config.min_transfers_at_max = 30;
  config.max_edges = 3;
  config.edge_config = fast_config();
  const auto series = run_threshold_study(context, config);
  ASSERT_FALSE(series.empty());
  for (const auto& entry : series) {
    ASSERT_EQ(entry.samples.size(), 4u);
    ASSERT_EQ(entry.xgb_mdape.size(), 4u);
    // Higher thresholds keep fewer transfers.
    for (std::size_t t = 1; t < entry.samples.size(); ++t)
      EXPECT_LE(entry.samples[t], entry.samples[t - 1]);
    EXPECT_GE(entry.samples.back(), 30u);
  }
}

}  // namespace
}  // namespace xfl::core
