#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "storage/disk.hpp"
#include "storage/lustre.hpp"

namespace xfl::storage {
namespace {

TEST(Disk, PresetSpecsValid) {
  EXPECT_TRUE(dtn_parallel_fs().valid());
  EXPECT_TRUE(midrange_server().valid());
  EXPECT_TRUE(personal_machine().valid());
}

TEST(Disk, PresetsOrderedByClass) {
  EXPECT_GT(dtn_parallel_fs().read_Bps, midrange_server().read_Bps);
  EXPECT_GT(midrange_server().read_Bps, personal_machine().read_Bps);
}

TEST(Disk, DtnMatchesEsnetTestbedClass) {
  // Table 1 DTNs read at ~9.3 Gb/s and write at ~7.8 Gb/s.
  const auto spec = dtn_parallel_fs();
  EXPECT_NEAR(to_gbit(spec.read_Bps), 9.3, 0.01);
  EXPECT_NEAR(to_gbit(spec.write_Bps), 7.8, 0.01);
}

TEST(Disk, EfficiencyZeroGrantIsZero) {
  EXPECT_DOUBLE_EQ(file_overhead_efficiency_Bps(0.0, 1e9, 0.1), 0.0);
}

TEST(Disk, EfficiencyNoOverheadIsIdentity) {
  EXPECT_DOUBLE_EQ(file_overhead_efficiency_Bps(5e8, 1e9, 0.0), 5e8);
}

TEST(Disk, EfficiencyAlwaysBelowGrant) {
  for (const double grant : {1e6, 1e8, 1e9}) {
    const double eff = file_overhead_efficiency_Bps(grant, 1e8, 0.05);
    EXPECT_LT(eff, grant);
    EXPECT_GT(eff, 0.0);
  }
}

TEST(Disk, EfficiencyHurtsSmallFilesMore) {
  // Same grant, smaller files -> lower effective throughput (Fig. 5).
  const double big = file_overhead_efficiency_Bps(5e8, 1e10, 0.05);
  const double small = file_overhead_efficiency_Bps(5e8, 1e6, 0.05);
  EXPECT_GT(big, small);
}

TEST(Disk, EfficiencySaturatesAtFileRate) {
  // As the grant grows, throughput approaches s / t_o.
  const double s = 1e8, t_o = 0.1;
  const double eff = file_overhead_efficiency_Bps(1e15, s, t_o);
  EXPECT_NEAR(eff, s / t_o, s / t_o * 0.001);
}

TEST(Disk, EfficiencyMonotoneInGrant) {
  double previous = 0.0;
  for (double grant = 1e6; grant <= 1e12; grant *= 10.0) {
    const double eff = file_overhead_efficiency_Bps(grant, 1e9, 0.05);
    EXPECT_GE(eff, previous);
    previous = eff;
  }
}

TEST(Disk, EfficiencyContractChecks) {
  EXPECT_THROW(file_overhead_efficiency_Bps(-1.0, 1e9, 0.1),
               xfl::ContractViolation);
  EXPECT_THROW(file_overhead_efficiency_Bps(1.0, 0.0, 0.1),
               xfl::ContractViolation);
  EXPECT_THROW(file_overhead_efficiency_Bps(1.0, 1e9, -0.1),
               xfl::ContractViolation);
}

TEST(Lustre, SpecLayoutRoundRobin) {
  const auto spec = nersc_like_lustre(8, 4);
  EXPECT_TRUE(spec.valid());
  EXPECT_EQ(spec.oss_of(0), 0u);
  EXPECT_EQ(spec.oss_of(3), 3u);
  EXPECT_EQ(spec.oss_of(4), 0u);
  EXPECT_EQ(spec.oss_of(7), 3u);
}

TEST(Lustre, OssOfOutOfRangeThrows) {
  const auto spec = nersc_like_lustre(4, 2);
  EXPECT_THROW(spec.oss_of(4), xfl::ContractViolation);
}

LmtSample make_sample(double t, double read, double write, double cpu) {
  LmtSample s;
  s.time_s = t;
  s.ost_read_Bps = {read, read / 2.0};
  s.ost_write_Bps = {write, write / 2.0};
  s.oss_cpu_load = {cpu};
  return s;
}

TEST(LmtLog, AppendAndQuery) {
  LmtLog log(2, 1);
  log.append(make_sample(0.0, 100.0, 50.0, 0.5));
  log.append(make_sample(5.0, 200.0, 150.0, 0.7));
  log.append(make_sample(10.0, 300.0, 250.0, 0.9));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log.mean_ost_read(0, 0.0, 10.0), 200.0);
  EXPECT_DOUBLE_EQ(log.mean_ost_read(1, 0.0, 10.0), 100.0);
  EXPECT_DOUBLE_EQ(log.mean_ost_write(0, 4.0, 11.0), 200.0);
  EXPECT_DOUBLE_EQ(log.mean_oss_cpu(0, 0.0, 4.9), 0.5);
}

TEST(LmtLog, EmptyWindowMeansZero) {
  LmtLog log(1, 1);
  LmtSample s;
  s.time_s = 100.0;
  s.ost_read_Bps = {1.0};
  s.ost_write_Bps = {1.0};
  s.oss_cpu_load = {1.0};
  log.append(s);
  EXPECT_DOUBLE_EQ(log.mean_ost_read(0, 0.0, 50.0), 0.0);
}

TEST(LmtLog, RejectsOutOfOrderAndBadShape) {
  LmtLog log(2, 1);
  log.append(make_sample(10.0, 1.0, 1.0, 0.1));
  EXPECT_THROW(log.append(make_sample(5.0, 1.0, 1.0, 0.1)),
               xfl::ContractViolation);
  LmtSample bad;
  bad.time_s = 20.0;
  bad.ost_read_Bps = {1.0};  // Wrong width (needs 2).
  bad.ost_write_Bps = {1.0, 1.0};
  bad.oss_cpu_load = {0.1};
  EXPECT_THROW(log.append(bad), xfl::ContractViolation);
}

TEST(LmtLog, QueryIndexBounds) {
  LmtLog log(1, 1);
  EXPECT_THROW(log.mean_ost_read(1, 0.0, 1.0), xfl::ContractViolation);
  EXPECT_THROW(log.mean_oss_cpu(2, 0.0, 1.0), xfl::ContractViolation);
}

}  // namespace
}  // namespace xfl::storage
