#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "endpoint/endpoint.hpp"
#include "endpoint/gridftp.hpp"

namespace xfl::endpoint {
namespace {

TEST(Endpoint, CatalogAddAndFind) {
  EndpointCatalog catalog;
  const auto id = catalog.add(make_dtn("alpha", 0));
  EXPECT_EQ(catalog[id].name, "alpha");
  EndpointId found = 99;
  EXPECT_TRUE(catalog.find("alpha", found));
  EXPECT_EQ(found, id);
  EXPECT_FALSE(catalog.find("missing", found));
}

TEST(Endpoint, CatalogRejectsInvalidSpec) {
  EndpointCatalog catalog;
  EndpointSpec bad;  // Empty name.
  EXPECT_THROW(catalog.add(bad), xfl::ContractViolation);
}

TEST(Endpoint, TypeStrings) {
  EXPECT_STREQ(to_string(EndpointType::kServer), "GCS");
  EXPECT_STREQ(to_string(EndpointType::kPersonal), "GCP");
}

TEST(Endpoint, MakersSetTypes) {
  EXPECT_EQ(make_dtn("d", 0).type, EndpointType::kServer);
  EXPECT_EQ(make_personal("p", 0).type, EndpointType::kPersonal);
}

TEST(Endpoint, PersonalSlowerThanDtn) {
  const auto dtn = make_dtn("d", 0);
  const auto personal = make_personal("p", 0);
  EXPECT_GT(dtn.nic_in_Bps, personal.nic_in_Bps);
  EXPECT_GT(dtn.disk.read_Bps, personal.disk.read_Bps);
}

TEST(Endpoint, CpuEfficiencyDecreasing) {
  double previous = 2.0;
  for (const double n : {0.0, 4.0, 16.0, 48.0, 128.0, 512.0}) {
    const double eff = cpu_efficiency(n);
    EXPECT_LT(eff, previous);
    EXPECT_GT(eff, 0.0);
    EXPECT_LE(eff, 1.0);
    previous = eff;
  }
}

TEST(Endpoint, CpuEfficiencyHalfAtKnee) {
  EXPECT_DOUBLE_EQ(cpu_efficiency(48.0, 48.0), 0.5);
  EXPECT_DOUBLE_EQ(cpu_efficiency(10.0, 10.0), 0.5);
}

TEST(Endpoint, CpuEfficiencyIdleIsFull) {
  EXPECT_DOUBLE_EQ(cpu_efficiency(0.0), 1.0);
}

TEST(Endpoint, CpuEfficiencyRejectsNegative) {
  EXPECT_THROW(cpu_efficiency(-1.0), xfl::ContractViolation);
  EXPECT_THROW(cpu_efficiency(1.0, 0.0), xfl::ContractViolation);
}

TEST(GridFtp, EffectiveConcurrencyCappedByFiles) {
  GridFtpParams params{.concurrency = 8, .parallelism = 4};
  EXPECT_EQ(effective_concurrency(params, 100), 8u);
  EXPECT_EQ(effective_concurrency(params, 3), 3u);
  EXPECT_EQ(effective_concurrency(params, 8), 8u);
}

TEST(GridFtp, TotalStreamsIsProcsTimesP) {
  GridFtpParams params{.concurrency = 4, .parallelism = 8};
  EXPECT_EQ(total_streams(params, 100), 32u);
  EXPECT_EQ(total_streams(params, 2), 16u);
}

TEST(GridFtp, ConcurrencyContractChecks) {
  GridFtpParams bad{.concurrency = 0, .parallelism = 1};
  EXPECT_THROW(effective_concurrency(bad, 10), xfl::ContractViolation);
  GridFtpParams good{.concurrency = 1, .parallelism = 1};
  EXPECT_THROW(effective_concurrency(good, 0), xfl::ContractViolation);
}

TEST(GridFtp, CpuWorkFactorOrdering) {
  GridFtpParams plain{.concurrency = 1, .parallelism = 1,
                      .integrity_check = false, .encrypt = false};
  GridFtpParams checked = plain;
  checked.integrity_check = true;
  GridFtpParams encrypted = checked;
  encrypted.encrypt = true;
  EXPECT_DOUBLE_EQ(cpu_work_factor(plain), 1.0);
  EXPECT_GT(cpu_work_factor(checked), cpu_work_factor(plain));
  EXPECT_GT(cpu_work_factor(encrypted), cpu_work_factor(checked));
}

TEST(GridFtp, StartupCostGrowsWithRttAndConcurrency) {
  GridFtpParams low{.concurrency = 1, .parallelism = 1};
  GridFtpParams high{.concurrency = 16, .parallelism = 1};
  EXPECT_LT(startup_cost_s(low, 0.01), startup_cost_s(low, 0.2));
  EXPECT_LT(startup_cost_s(low, 0.1), startup_cost_s(high, 0.1));
}

TEST(GridFtp, PerFileOverheadIncludesChecksumCost) {
  const storage::DiskSpec disk = storage::dtn_parallel_fs();
  GridFtpParams with{.concurrency = 4, .parallelism = 4,
                     .integrity_check = true};
  GridFtpParams without = with;
  without.integrity_check = false;
  EXPECT_GT(per_file_overhead_s(with, disk, 0.05),
            per_file_overhead_s(without, disk, 0.05));
}

TEST(GridFtp, FaultIntensityGrowsWithLoad) {
  const FaultPolicy policy;
  const double idle = fault_intensity_per_s(policy, 0.0);
  const double busy = fault_intensity_per_s(policy, 1.0);
  EXPECT_DOUBLE_EQ(idle, policy.base_rate_per_s);
  EXPECT_DOUBLE_EQ(busy, policy.base_rate_per_s + policy.load_rate_per_s);
  EXPECT_LT(fault_intensity_per_s(policy, 0.5), busy);
}

TEST(GridFtp, FaultIntensityRejectsBadUtilisation) {
  const FaultPolicy policy;
  EXPECT_THROW(fault_intensity_per_s(policy, -0.1), xfl::ContractViolation);
  EXPECT_THROW(fault_intensity_per_s(policy, 1.5), xfl::ContractViolation);
}

// Parameterised sweep: stream counts consistent for all C, P, Nf combos.
class GridFtpSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> {};

TEST_P(GridFtpSweep, StreamsEqualProcsTimesParallelism) {
  const auto [c, p, files] = GetParam();
  GridFtpParams params{.concurrency = c, .parallelism = p};
  const auto procs = effective_concurrency(params, files);
  EXPECT_LE(procs, c);
  EXPECT_LE(procs, files);
  EXPECT_EQ(total_streams(params, files), procs * p);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GridFtpSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 16u),
                       ::testing::Values(1u, 4u, 8u),
                       ::testing::Values(1ull, 3ull, 100ull)));

}  // namespace
}  // namespace xfl::endpoint
