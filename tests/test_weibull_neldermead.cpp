#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "ml/neldermead.hpp"
#include "ml/weibull.hpp"

namespace xfl::ml {
namespace {

TEST(NelderMead, MinimisesQuadratic) {
  const auto result = nelder_mead(
      [](const std::vector<double>& p) {
        return (p[0] - 3.0) * (p[0] - 3.0) + (p[1] + 1.0) * (p[1] + 1.0);
      },
      {0.0, 0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 3.0, 1e-4);
  EXPECT_NEAR(result.x[1], -1.0, 1e-4);
}

TEST(NelderMead, MinimisesRosenbrock) {
  NelderMeadOptions options;
  options.max_iterations = 20000;
  options.tolerance = 1e-14;
  const auto result = nelder_mead(
      [](const std::vector<double>& p) {
        const double a = 1.0 - p[0];
        const double b = p[1] - p[0] * p[0];
        return a * a + 100.0 * b * b;
      },
      {-1.2, 1.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
  EXPECT_NEAR(result.x[1], 1.0, 1e-3);
}

TEST(NelderMead, OneDimensional) {
  const auto result = nelder_mead(
      [](const std::vector<double>& p) { return std::cosh(p[0] - 2.0); },
      {10.0});
  EXPECT_NEAR(result.x[0], 2.0, 1e-4);
}

TEST(NelderMead, ZeroStartingPointStillMoves) {
  const auto result = nelder_mead(
      [](const std::vector<double>& p) { return (p[0] - 1.0) * (p[0] - 1.0); },
      {0.0});
  EXPECT_NEAR(result.x[0], 1.0, 1e-4);
}

TEST(NelderMead, ReportsIterationsAndValue) {
  const auto result = nelder_mead(
      [](const std::vector<double>& p) { return p[0] * p[0]; }, {5.0});
  EXPECT_GT(result.iterations, 0);
  EXPECT_NEAR(result.fx, 0.0, 1e-8);
}

TEST(NelderMead, ContractChecks) {
  EXPECT_THROW(
      nelder_mead([](const std::vector<double>&) { return 0.0; }, {}),
      xfl::ContractViolation);
}

TEST(Weibull, EvaluateKnownShape) {
  // k=2, l=1, A=1: f(x) = 2 x exp(-x^2); f(1) = 2/e.
  const WeibullCurve curve{1.0, 2.0, 1.0};
  EXPECT_NEAR(curve(1.0), 2.0 / std::exp(1.0), 1e-12);
  EXPECT_DOUBLE_EQ(curve(0.0), 0.0);  // k > 1 starts at zero.
}

TEST(Weibull, ModeFormula) {
  const WeibullCurve curve{1.0, 2.0, 3.0};
  // mode = l * ((k-1)/k)^(1/k) = 3 * sqrt(0.5).
  EXPECT_NEAR(curve.mode(), 3.0 * std::sqrt(0.5), 1e-12);
  const WeibullCurve decreasing{1.0, 0.8, 1.0};
  EXPECT_DOUBLE_EQ(decreasing.mode(), 0.0);
}

TEST(Weibull, RejectsNegativeInput) {
  const WeibullCurve curve{1.0, 2.0, 1.0};
  EXPECT_THROW(curve(-1.0), xfl::ContractViolation);
}

TEST(Weibull, FitRecoversCleanCurve) {
  const WeibullCurve truth{50.0, 2.2, 40.0};
  std::vector<double> x, y;
  for (double v = 1.0; v <= 120.0; v += 1.0) {
    x.push_back(v);
    y.push_back(truth(v));
  }
  const auto fitted = fit_weibull_curve(x, y);
  // The fitted curve must reproduce the data (parameters can trade off).
  EXPECT_LT(weibull_sse(fitted, x, y) / weibull_sse(WeibullCurve{}, x, y),
            1e-4);
  EXPECT_NEAR(fitted.mode(), truth.mode(), 2.0);
}

TEST(Weibull, FitHandlesNoisyRiseAndFall) {
  Rng rng(21);
  const WeibullCurve truth{900.0, 1.8, 60.0};
  std::vector<double> x, y;
  for (double v = 1.0; v <= 200.0; v += 1.0) {
    x.push_back(v);
    y.push_back(std::max(0.0, truth(v) + rng.normal(0.0, 0.5)));
  }
  const auto fitted = fit_weibull_curve(x, y);
  EXPECT_NEAR(fitted.mode(), truth.mode(), 12.0);
  // Shape must rise then fall: value at the mode above both tails.
  const double at_mode = fitted(fitted.mode());
  EXPECT_GT(at_mode, fitted(1.0));
  EXPECT_GT(at_mode, fitted(200.0));
}

TEST(Weibull, FitScaleInvariant) {
  // Same curve expressed in different units should fit equally well.
  const WeibullCurve truth{2.0e8, 2.0, 30.0};  // y in bytes/s.
  std::vector<double> x, y;
  for (double v = 1.0; v <= 100.0; v += 2.0) {
    x.push_back(v);
    y.push_back(truth(v));
  }
  const auto fitted = fit_weibull_curve(x, y);
  double max_y = 0.0;
  for (const double v : y) max_y = std::max(max_y, v);
  EXPECT_LT(weibull_sse(fitted, x, y), 1e-4 * max_y * max_y * x.size());
}

TEST(Weibull, FitContractChecks) {
  const std::vector<double> tiny = {1.0, 2.0};
  EXPECT_THROW(fit_weibull_curve(tiny, tiny), xfl::ContractViolation);
}

}  // namespace
}  // namespace xfl::ml
