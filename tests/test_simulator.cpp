#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "endpoint/endpoint.hpp"
#include "net/site.hpp"

namespace xfl::sim {
namespace {

/// Two-DTN fixture ~1,200 km apart (ANL/BNL-like).
struct TwoSiteWorld {
  net::SiteCatalog sites;
  endpoint::EndpointCatalog endpoints;

  TwoSiteWorld() {
    sites.add({"A", {41.708, -87.983}});
    sites.add({"B", {40.873, -72.872}});
    endpoints.add(endpoint::make_dtn("a-dtn", 0));
    endpoints.add(endpoint::make_dtn("b-dtn", 1));
  }
};

TransferRequest make_request(std::uint64_t id, double submit, double bytes,
                             std::uint64_t files = 10) {
  TransferRequest req;
  req.id = id;
  req.src = 0;
  req.dst = 1;
  req.submit_s = submit;
  req.bytes = bytes;
  req.files = files;
  req.dirs = 1;
  req.params.concurrency = 4;
  req.params.parallelism = 4;
  return req;
}

SimConfig quiet_config() {
  SimConfig config;
  config.enable_faults = false;
  config.seed = 99;
  return config;
}

TEST(Simulator, LoneTransferCompletesAtSubsystemBound) {
  TwoSiteWorld world;
  Simulator sim(world.sites, world.endpoints, quiet_config());
  sim.submit(make_request(1, 0.0, 50.0 * kGB));
  const auto result = sim.run();
  ASSERT_EQ(result.log.size(), 1u);
  const auto& record = result.log[0];
  // Destination disk write (7.8 Gb/s = 975 MB/s) is the bottleneck; the
  // logged rate is slightly below it because duration includes startup.
  const double rate = record.rate_Bps();
  EXPECT_LT(rate, gbit(7.8));
  EXPECT_GT(rate, 0.85 * gbit(7.8));
}

TEST(Simulator, AllSubmittedTransfersAreLogged) {
  TwoSiteWorld world;
  Simulator sim(world.sites, world.endpoints, quiet_config());
  for (int i = 0; i < 20; ++i)
    sim.submit(make_request(static_cast<std::uint64_t>(i + 1), i * 7.0, 2.0 * kGB));
  const auto result = sim.run();
  EXPECT_EQ(result.log.size(), 20u);
}

TEST(Simulator, LogRecordsPreserveRequestFields) {
  TwoSiteWorld world;
  Simulator sim(world.sites, world.endpoints, quiet_config());
  auto req = make_request(77, 5.0, 1.0 * kGB, 42);
  req.dirs = 7;
  req.params.concurrency = 8;
  req.params.parallelism = 2;
  sim.submit(req);
  const auto result = sim.run();
  ASSERT_EQ(result.log.size(), 1u);
  const auto& record = result.log[0];
  EXPECT_EQ(record.id, 77u);
  EXPECT_DOUBLE_EQ(record.start_s, 5.0);
  EXPECT_GT(record.end_s, record.start_s);
  EXPECT_DOUBLE_EQ(record.bytes, 1.0 * kGB);
  EXPECT_EQ(record.files, 42u);
  EXPECT_EQ(record.dirs, 7u);
  EXPECT_EQ(record.concurrency, 8u);
  EXPECT_EQ(record.parallelism, 2u);
  EXPECT_EQ(record.src_type, endpoint::EndpointType::kServer);
}

TEST(Simulator, CompetingTransfersSlowEachOther) {
  TwoSiteWorld world;
  // Lone benchmark.
  Simulator lone(world.sites, world.endpoints, quiet_config());
  lone.submit(make_request(1, 0.0, 20.0 * kGB));
  const double lone_rate = lone.run().log[0].rate_Bps();

  // Four simultaneous transfers on the same edge.
  Simulator busy(world.sites, world.endpoints, quiet_config());
  for (int i = 0; i < 4; ++i)
    busy.submit(make_request(static_cast<std::uint64_t>(i + 1), 0.0, 20.0 * kGB));
  const auto result = busy.run();
  for (const auto& record : result.log.records()) {
    EXPECT_LT(record.rate_Bps(), 0.5 * lone_rate);
    EXPECT_GT(record.rate_Bps(), 0.1 * lone_rate);
  }
}

TEST(Simulator, SmallFileTransferSlowerThanBigFile) {
  TwoSiteWorld world;
  Simulator big(world.sites, world.endpoints, quiet_config());
  big.submit(make_request(1, 0.0, 10.0 * kGB, 10));  // 1 GB files.
  const double big_rate = big.run().log[0].rate_Bps();

  Simulator small(world.sites, world.endpoints, quiet_config());
  small.submit(make_request(1, 0.0, 10.0 * kGB, 10000));  // 1 MB files.
  const double small_rate = small.run().log[0].rate_Bps();
  EXPECT_LT(small_rate, 0.5 * big_rate);
}

TEST(Simulator, TinyTransferDominatedByStartup) {
  TwoSiteWorld world;
  Simulator sim(world.sites, world.endpoints, quiet_config());
  sim.submit(make_request(1, 0.0, 1.0, 1));  // One byte.
  const auto result = sim.run();
  ASSERT_EQ(result.log.size(), 1u);
  EXPECT_GT(result.log[0].duration_s(), 1.0);     // Startup cost dominates.
  EXPECT_LT(result.log[0].rate_Bps(), 10.0);      // Effectively zero rate.
}

TEST(Simulator, MemToMemProbeFasterThanDiskToDisk) {
  TwoSiteWorld world;
  Simulator disk(world.sites, world.endpoints, quiet_config());
  auto disk_req = make_request(1, 0.0, 50.0 * kGB);
  sim::TransferRequest mem_req = disk_req;
  mem_req.use_src_disk = false;
  mem_req.use_dst_disk = false;
  disk.submit(disk_req);
  const double disk_rate = disk.run().log[0].rate_Bps();

  Simulator mem(world.sites, world.endpoints, quiet_config());
  mem.submit(mem_req);
  const double mem_rate = mem.run().log[0].rate_Bps();
  // Disk-to-disk is write-limited (7.8 Gb/s); mem-to-mem can use the full
  // path (10 Gb/s NIC / WAN).
  EXPECT_GT(mem_rate, disk_rate);
}

TEST(Simulator, BackgroundLoadReducesRate) {
  TwoSiteWorld world;
  Simulator clean(world.sites, world.endpoints, quiet_config());
  clean.submit(make_request(1, 0.0, 20.0 * kGB));
  const double clean_rate = clean.run().log[0].rate_Bps();

  Simulator loaded(world.sites, world.endpoints, quiet_config());
  BackgroundSpec bg;
  bg.endpoint = 1;
  bg.component = Component::kDiskWrite;
  bg.demand_lo_Bps = 0.6 * world.endpoints[1].disk.write_Bps;
  bg.demand_hi_Bps = 0.6 * world.endpoints[1].disk.write_Bps;
  bg.mean_on_s = 1.0e9;   // Permanently on...
  bg.mean_off_s = 1.0e-3; // ...after the first toggle.
  bg.weight = 16.0;
  loaded.add_background(bg);
  loaded.submit(make_request(1, 1000.0, 20.0 * kGB));
  const double loaded_rate = loaded.run().log[0].rate_Bps();
  EXPECT_LT(loaded_rate, 0.85 * clean_rate);
}

TEST(Simulator, FaultsLoggedUnderHeavyLoadPolicy) {
  TwoSiteWorld world;
  SimConfig config;
  config.seed = 7;
  config.enable_faults = true;
  config.fault_policy.base_rate_per_s = 0.05;  // Absurdly faulty system.
  config.fault_policy.retry_delay_s = 1.0;
  Simulator sim(world.sites, world.endpoints, config);
  for (int i = 0; i < 5; ++i)
    sim.submit(make_request(static_cast<std::uint64_t>(i + 1), 0.0, 20.0 * kGB));
  const auto result = sim.run();
  std::uint32_t total_faults = 0;
  for (const auto& record : result.log.records()) total_faults += record.faults;
  EXPECT_GT(total_faults, 0u);
}

TEST(Simulator, FaultsExtendDuration) {
  TwoSiteWorld world;
  Simulator clean(world.sites, world.endpoints, quiet_config());
  clean.submit(make_request(1, 0.0, 20.0 * kGB));
  const double clean_duration = clean.run().log[0].duration_s();

  SimConfig faulty = quiet_config();
  faulty.enable_faults = true;
  faulty.fault_policy.base_rate_per_s = 0.05;
  faulty.fault_policy.retry_delay_s = 10.0;
  Simulator sim(world.sites, world.endpoints, faulty);
  sim.submit(make_request(1, 0.0, 20.0 * kGB));
  const auto result = sim.run();
  if (result.log[0].faults > 0) {
    EXPECT_GT(result.log[0].duration_s(), clean_duration);
  }
}

TEST(Simulator, SamplingProducesOrderedSamples) {
  TwoSiteWorld world;
  Simulator sim(world.sites, world.endpoints, quiet_config());
  sim.enable_sampling(1, 5.0);
  for (int i = 0; i < 3; ++i)
    sim.submit(make_request(static_cast<std::uint64_t>(i + 1), i * 20.0, 20.0 * kGB));
  const auto result = sim.run();
  const auto it = result.samples.find(1);
  ASSERT_NE(it, result.samples.end());
  ASSERT_GT(it->second.size(), 2u);
  double previous = -1.0;
  bool saw_instances = false;
  for (const auto& sample : it->second) {
    EXPECT_GT(sample.time_s, previous);
    previous = sample.time_s;
    EXPECT_GE(sample.cpu_load, 0.0);
    EXPECT_LE(sample.cpu_load, 1.0);
    if (sample.gridftp_instances > 0.0) saw_instances = true;
  }
  EXPECT_TRUE(saw_instances);
}

TEST(Simulator, SampleRatesReflectIncomingTraffic) {
  TwoSiteWorld world;
  Simulator sim(world.sites, world.endpoints, quiet_config());
  sim.enable_sampling(1, 2.0);
  sim.submit(make_request(1, 0.0, 50.0 * kGB));
  const auto result = sim.run();
  double max_in = 0.0;
  for (const auto& sample : result.samples.at(1))
    max_in = std::max(max_in, sample.in_Bps);
  EXPECT_GT(max_in, 0.5 * gbit(7.8));
}

TEST(Simulator, RejectsBadUsagePatterns) {
  TwoSiteWorld world;
  Simulator sim(world.sites, world.endpoints, quiet_config());
  TransferRequest self_loop = make_request(1, 0.0, 1.0);
  self_loop.dst = self_loop.src;
  EXPECT_THROW(sim.submit(self_loop), xfl::ContractViolation);
  TransferRequest out_of_range = make_request(2, 0.0, 1.0);
  out_of_range.dst = 9;
  EXPECT_THROW(sim.submit(out_of_range), xfl::ContractViolation);
}

TEST(Simulator, RunTwiceRejected) {
  TwoSiteWorld world;
  Simulator sim(world.sites, world.endpoints, quiet_config());
  sim.submit(make_request(1, 0.0, 1.0 * kGB));
  sim.run();
  EXPECT_THROW(sim.run(), xfl::ContractViolation);
}

TEST(Simulator, DeterministicAcrossRuns) {
  TwoSiteWorld world;
  auto run_once = [&world]() {
    SimConfig config;
    config.seed = 1234;
    Simulator sim(world.sites, world.endpoints, config);
    for (int i = 0; i < 10; ++i)
      sim.submit(make_request(static_cast<std::uint64_t>(i + 1), i * 13.0,
                              5.0 * kGB));
    return sim.run();
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.log.size(), second.log.size());
  for (std::size_t i = 0; i < first.log.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.log[i].end_s, second.log[i].end_s);
    EXPECT_EQ(first.log[i].faults, second.log[i].faults);
  }
}

TEST(Simulator, ByteConservationUnderContention) {
  // Total bytes logged equals total bytes requested, faults or not.
  TwoSiteWorld world;
  SimConfig config;
  config.seed = 5;
  config.fault_policy.base_rate_per_s = 1e-3;
  Simulator sim(world.sites, world.endpoints, config);
  double requested = 0.0;
  for (int i = 0; i < 15; ++i) {
    const double bytes = (i + 1) * kGB;
    requested += bytes;
    sim.submit(make_request(static_cast<std::uint64_t>(i + 1), i * 3.0, bytes));
  }
  const auto result = sim.run();
  double logged = 0.0;
  for (const auto& record : result.log.records()) logged += record.bytes;
  EXPECT_DOUBLE_EQ(logged, requested);
}

TEST(Simulator, StatsAccounting) {
  TwoSiteWorld world;
  Simulator sim(world.sites, world.endpoints, quiet_config());
  double requested = 0.0;
  for (int i = 0; i < 8; ++i) {
    const double bytes = (i + 1) * kGB;
    requested += bytes;
    sim.submit(make_request(static_cast<std::uint64_t>(i + 1), i * 5.0, bytes));
  }
  const auto result = sim.run();
  EXPECT_GT(result.stats.events, 8u);
  EXPECT_DOUBLE_EQ(result.stats.total_bytes, requested);
  EXPECT_EQ(result.stats.total_faults, 0u);  // Faults disabled.
  EXPECT_GE(result.stats.peak_active, 1u);
  // Makespan equals the latest logged end time.
  double latest = 0.0;
  for (const auto& record : result.log.records())
    latest = std::max(latest, record.end_s);
  EXPECT_DOUBLE_EQ(result.stats.makespan_s, latest);
}

TEST(Simulator, StatsPeakActiveRespectsAdmissionCap) {
  TwoSiteWorld world;
  SimConfig config = quiet_config();
  config.max_active_per_endpoint = 3;
  Simulator sim(world.sites, world.endpoints, config);
  for (int i = 0; i < 20; ++i)
    sim.submit(make_request(static_cast<std::uint64_t>(i + 1), 0.0, 2.0 * kGB));
  const auto result = sim.run();
  EXPECT_LE(result.stats.peak_active, 3u);
  EXPECT_GT(result.stats.peak_queue, 0u);  // Overload definitely queued.
}

// Concurrency sweep: higher concurrency never violates the analytical
// bound, and every logged rate stays below the slowest subsystem.
class SimulatorBoundSweep : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorBoundSweep, RatesRespectEquationOne) {
  TwoSiteWorld world;
  Simulator sim(world.sites, world.endpoints, quiet_config());
  const int transfers = GetParam();
  for (int i = 0; i < transfers; ++i)
    sim.submit(make_request(static_cast<std::uint64_t>(i + 1), i * 2.0, 10.0 * kGB));
  const auto result = sim.run();
  const double bound = std::min({world.endpoints[0].disk.read_Bps,
                                 world.endpoints[1].disk.write_Bps,
                                 world.endpoints[0].nic_out_Bps});
  for (const auto& record : result.log.records())
    EXPECT_LE(record.rate_Bps(), bound * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(Load, SimulatorBoundSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace xfl::sim
