#include "net/tcp_model.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace xfl::net {
namespace {

TEST(TcpModel, MathisDecreasesWithLoss) {
  const TcpConfig cfg;
  const double low = mathis_throughput_Bps(cfg, 0.05, 1e-6);
  const double high = mathis_throughput_Bps(cfg, 0.05, 1e-4);
  EXPECT_GT(low, high);
}

TEST(TcpModel, MathisDecreasesWithRtt) {
  const TcpConfig cfg;
  EXPECT_GT(mathis_throughput_Bps(cfg, 0.01, 1e-6),
            mathis_throughput_Bps(cfg, 0.1, 1e-6));
}

TEST(TcpModel, MathisZeroLossIsEffectivelyUnbounded) {
  const TcpConfig cfg;
  EXPECT_GT(mathis_throughput_Bps(cfg, 0.05, 0.0), gbit(1000.0));
}

TEST(TcpModel, MathisMatchesClosedForm) {
  const TcpConfig cfg{.mss_bytes = 1460.0};
  // MSS/(RTT*sqrt(2p/3)) with p=6e-4 -> sqrt term = 0.02.
  const double expected = 1460.0 / (0.1 * 0.02);
  EXPECT_NEAR(mathis_throughput_Bps(cfg, 0.1, 6e-4), expected, expected * 1e-9);
}

TEST(TcpModel, WindowBoundIsWindowOverRtt) {
  const TcpConfig cfg{.max_window_bytes = 4.0e6};
  EXPECT_DOUBLE_EQ(window_throughput_Bps(cfg, 0.05), 8.0e7);
}

TEST(TcpModel, SingleStreamTakesMinOfBounds) {
  TcpConfig cfg;
  cfg.max_window_bytes = 1.0e6;
  // Window bound 1e6/0.1=1e7; with tiny loss Mathis is huge -> window binds.
  EXPECT_DOUBLE_EQ(single_stream_ceiling_Bps(cfg, 0.1, 1e-9),
                   window_throughput_Bps(cfg, 0.1));
  // With heavy loss Mathis binds.
  const double lossy = single_stream_ceiling_Bps(cfg, 0.1, 0.01);
  EXPECT_DOUBLE_EQ(lossy, mathis_throughput_Bps(cfg, 0.1, 0.01));
}

TEST(TcpModel, ParallelStreamsMonotoneNondecreasing) {
  const TcpConfig cfg;
  double previous = 0.0;
  for (std::uint32_t n = 1; n <= 128; n *= 2) {
    const double ceiling = parallel_stream_ceiling_Bps(cfg, n, 0.08, 2e-6);
    EXPECT_GE(ceiling, previous);
    previous = ceiling;
  }
}

TEST(TcpModel, ParallelStreamsSublinear) {
  const TcpConfig cfg;
  const double one = parallel_stream_ceiling_Bps(cfg, 1, 0.08, 2e-6);
  const double sixteen = parallel_stream_ceiling_Bps(cfg, 16, 0.08, 2e-6);
  EXPECT_LT(sixteen, 16.0 * one);   // Diminishing returns.
  EXPECT_GT(sixteen, 8.0 * one);    // But still strongly increasing.
}

TEST(TcpModel, ContractViolations) {
  const TcpConfig cfg;
  EXPECT_THROW(mathis_throughput_Bps(cfg, 0.0, 1e-6), xfl::ContractViolation);
  EXPECT_THROW(mathis_throughput_Bps(cfg, 0.1, 1.0), xfl::ContractViolation);
  EXPECT_THROW(parallel_stream_ceiling_Bps(cfg, 0, 0.1, 1e-6),
               xfl::ContractViolation);
}

// Property sweep: ceiling positive and finite over a parameter grid.
class TcpGrid : public ::testing::TestWithParam<
                    std::tuple<std::uint32_t, double, double>> {};

TEST_P(TcpGrid, CeilingPositiveFinite) {
  const auto [streams, rtt, loss] = GetParam();
  const TcpConfig cfg;
  const double ceiling = parallel_stream_ceiling_Bps(cfg, streams, rtt, loss);
  EXPECT_GT(ceiling, 0.0);
  EXPECT_LT(ceiling, 1.0e15);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TcpGrid,
    ::testing::Combine(::testing::Values(1u, 4u, 16u, 64u, 256u),
                       ::testing::Values(0.001, 0.02, 0.107, 0.3),
                       ::testing::Values(0.0, 1e-7, 1e-5, 1e-3)));

}  // namespace
}  // namespace xfl::net
